#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ftgcs::sim {

void EventQueue::reserve(std::size_t capacity) {
  slots_.reserve(capacity);
  fns_.reserve(capacity);
  positions_.reserve(capacity);
  free_.reserve(capacity);
  if (backend_ == QueueBackend::kHeap) {
    heap_.reserve(capacity);
  } else {
    bag_.reserve(capacity);
    bag_narrow_.reserve(capacity);
    // Bucket headers only; each bucket's item vector grows on demand and
    // keeps its capacity across windows, so the steady state is
    // allocation-free either way.
    wheel_.reserve(std::min(capacity, kMaxBuckets));
  }
}

void EventQueue::prewarm() {
  if (backend_ == QueueBackend::kHeap) return;
  // A lane's capacity IS its occupancy high-water (vectors never shrink
  // here — drains clear() or resize() down), so the global floor needs no
  // separate tracking: take the max over every bucket ever materialized.
  std::size_t wide = 0;
  std::size_t narrow = 0;
  for (const Bucket& b : wheel_) {
    wide = std::max(wide, b.items.capacity());
    narrow = std::max(narrow, b.narrow.capacity());
  }
  for (const Bucket& b : rung_) {
    wide = std::max(wide, b.items.capacity());
    narrow = std::max(narrow, b.narrow.capacity());
  }
  // ×2 margin: window drift can pile a bucket somewhat higher than the
  // highest pile observed during warmup.
  wide *= 2;
  narrow *= 2;
  // reserve() moves lane storage but not the Bucket objects, so
  // head_cache_ and positions_ stay valid; lane order is preserved, so
  // the sorted flags stay honest.
  for (Bucket& b : wheel_) {
    b.items.reserve(wide);
    b.narrow.reserve(narrow);
  }
  for (Bucket& b : rung_) {
    b.items.reserve(wide);
    b.narrow.reserve(narrow);
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    if (!free_.empty()) {
      // The next schedule's slot record is a random access into the pool;
      // start pulling it while this event is being filled in.
      __builtin_prefetch(&slots_[free_.back()], 1);
    }
    return slot;
  }
  slots_.emplace_back();
  fns_.emplace_back();
  positions_.push_back(0);
  FTGCS_ASSERT(slots_.size() < kInlineBase);  // inline range stays unused
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

bool EventQueue::decode_live(EventId id, std::uint32_t& slot) const {
  if (!id) return false;
  slot = static_cast<std::uint32_t>(id.value >> 32) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  return slot < slots_.size() && slots_[slot].gen == gen;
}

void EventQueue::push_overflow(const Entry& entry) {
  // The overflow tier is an UNSORTED bag. Order is never consulted —
  // reseed() scans it linearly to build the next window — so a push is
  // one append, a removal one swap-remove, a far-future re-aim an
  // in-place overwrite.
  if (!entry.is_inline()) {
    positions_[entry.slot()] = static_cast<std::uint64_t>(bag_.size());
  }
  bag_.push_back(entry);
  ++stats_.overflow_pushes;
  const std::size_t occ = bag_.size() + bag_narrow_.size();
  if (occ > stats_.overflow_peak) stats_.overflow_peak = occ;
}

namespace {

/// Clamped bucket index for a bucket offset. `!(off < hi)` (not `>=`)
/// deliberately catches NaN and +inf as well: offsets of events scheduled
/// at kTimeInfinity (or computed against an infinite-width degenerate
/// window) land in the last bucket, whose drain sort still pops them in
/// exact (time, seq) order — matching the heap backend.
std::size_t clamp_bucket_index(double off, std::size_t lo, std::size_t hi) {
  if (!(off < static_cast<double>(hi))) return hi;
  if (off <= static_cast<double>(lo)) return lo;
  return static_cast<std::size_t>(off);
}

}  // namespace

void EventQueue::bucket_insert(Bucket& bucket, bool rung, std::size_t index,
                               const Entry& entry) {
  if (!entry.is_inline()) {
    positions_[entry.slot()] = encode_bucket_pos(rung, index, bucket.items.size());
  }
  bucket.items.push_back(entry);
  // If this is the drain head, the next pop re-sorts the remaining wide
  // span (the untouched narrow lane keeps its flag); for a not-yet-reached
  // bucket the flag is false already. The inserted entry may be
  // non-drainable, so the horizon-scan cache drops with it.
  bucket.sorted_wide = false;
  bucket.scan_valid = false;
  if (rung) {
    ++rung_live_;
  } else {
    ++wheel_live_;
  }
}

void EventQueue::insert_ladder(const Entry& entry) {
  // An empty window accepts nothing: pushes accumulate in the overflow
  // tier and the next pop reseeds a fresh window around them. This keeps
  // the one invariant everything rests on — every overflow entry is
  // (time, seq)-after every window entry.
  if (entry.at >= win_end_ || wheel_live_ + rung_live_ == 0) {
    push_overflow(entry);
    return;
  }
  // Clamping low to the drain bucket (including times below the window
  // origin, which are legal at queue level) preserves exact pop order:
  // the drain bucket re-sorts, and everything earlier has already fired.
  const std::size_t index =
      clamp_bucket_index((entry.at - win_start_) / bucket_width_, wheel_cur_,
                         wheel_nb_ - 1);
  if (index == wheel_cur_ && rung_active_) {
    const std::size_t sub =
        clamp_bucket_index((entry.at - rung_start_) / rung_width_, rung_cur_,
                           rung_nb_ - 1);
    bucket_insert(rung_[sub], /*rung=*/true, sub, entry);
    return;
  }
  bucket_insert(wheel_[index], /*rung=*/false, index, entry);
}

void EventQueue::insert_narrow(const NarrowEntry& entry) {
  // Mirrors insert_ladder for the slotless 16-byte lane: same window test,
  // same clamped bucket routing, so a narrow delivery lands in exactly the
  // bucket (and fires in exactly the order) its 32-byte twin would have.
  if (entry.at >= win_end_ || wheel_live_ + rung_live_ == 0) {
    bag_narrow_.push_back(entry);
    ++stats_.overflow_pushes;
    const std::size_t occ = bag_.size() + bag_narrow_.size();
    if (occ > stats_.overflow_peak) stats_.overflow_peak = occ;
    return;
  }
  const std::size_t index =
      clamp_bucket_index((entry.at - win_start_) / bucket_width_, wheel_cur_,
                         wheel_nb_ - 1);
  Bucket* bucket = &wheel_[index];
  bool rung = false;
  if (index == wheel_cur_ && rung_active_) {
    const std::size_t sub =
        clamp_bucket_index((entry.at - rung_start_) / rung_width_, rung_cur_,
                           rung_nb_ - 1);
    bucket = &rung_[sub];
    rung = true;
  }
  bucket->narrow.push_back(entry);
  bucket->sorted_narrow = false;  // the wide lane is untouched
  bucket->scan_valid = false;
  if (rung) {
    ++rung_live_;
  } else {
    ++wheel_live_;
  }
}

void EventQueue::insert_ladder_group(Time base, const Duration* delays,
                                     std::size_t count, EventKind kind,
                                     SinkId sink, const EventPayload& proto,
                                     std::int32_t first_dest,
                                     const std::int32_t* rest_dests) {
  std::uint32_t gid;
  if (!free_gids_.empty()) {
    gid = free_gids_.back();
    free_gids_.pop_back();
  } else {
    gid = static_cast<std::uint32_t>(groups_.size());
    groups_.emplace_back();
    // gids ride in the entry key's slot field; keep them out of the
    // inline-sentinel range so a narrow key can never read as inline.
    FTGCS_ASSERT(groups_.size() < kInlineBase);
  }
  GroupRec& g = groups_[gid];
  g.base_seq = next_seq_;
  g.rest = rest_dests;
  g.first_dest = first_dest;
  g.a = proto.a;
  g.b = proto.b;
  g.d = proto.d;
  g.sink_kind = sink << 8 | static_cast<std::uint32_t>(kind);
  g.live = static_cast<std::uint32_t>(count);
  // One bump of `count`: delivery i gets base_seq + i, exactly the seqs
  // `count` sequential schedule_fire_only calls would have consumed.
  next_seq_ += count;
  FTGCS_ASSERT(next_seq_ < (std::uint64_t{1} << kSeqBits));
  ++stats_.group_inserts;
  stats_.narrow_events += count;
  NarrowEntry e;
  for (std::size_t i = 0; i < count; ++i) {
    FTGCS_EXPECTS(delays[i] >= 0.0);
    e.at = base + delays[i];
    e.key = (g.base_seq + i) << kSlotBits | gid;
    insert_narrow(e);
  }
}

void EventQueue::remove_resident(std::uint32_t slot) {
  const std::uint64_t pos = positions_[slot];
  if (pos < (std::uint64_t{1} << 32)) {
    // Overflow bag: swap-remove (the kHeap backend never routes through
    // here — its cancel path uses remove_at on the real heap directly).
    const std::size_t idx = static_cast<std::size_t>(pos);
    const Entry moved = bag_.back();
    bag_.pop_back();
    if (idx < bag_.size()) {
      bag_[idx] = moved;
      if (!moved.is_inline()) {
        positions_[moved.slot()] = static_cast<std::uint64_t>(idx);
      }
    }
    return;
  }
  const bool rung = (pos & kRungBit) != 0;
  const std::size_t bucket_index =
      static_cast<std::size_t>(((pos & ~kRungBit) >> 32) - 1);
  std::size_t idx = static_cast<std::uint32_t>(pos);
  Bucket& bucket = rung ? rung_[bucket_index] : wheel_[bucket_index];
  if (idx >= bucket.items.size() || bucket.items[idx].slot() != slot) {
    // The recorded index went stale when the bucket was sorted for drain
    // (sort_bucket skips the positions rewrite). The bucket is still the
    // right one; locate the entry by its unique slot.
    idx = 0;
    while (bucket.items[idx].slot() != slot) ++idx;
  }
  const Entry moved = bucket.items.back();
  bucket.items.pop_back();
  if (idx < bucket.items.size()) {
    bucket.items[idx] = moved;
    if (!moved.is_inline()) {
      positions_[moved.slot()] = encode_bucket_pos(rung, bucket_index, idx);
    }
  }
  bucket.sorted_wide = false;  // a swap-remove breaks the wide drain order
  bucket.scan_valid = false;
  if (rung) {
    --rung_live_;
  } else {
    --wheel_live_;
  }
}

void EventQueue::sort_bucket(Bucket& bucket) {
  // Descending (time, seq): pops are pop_back, so the live span is always
  // exactly `items` and cancel stays a swap-remove. Positions are NOT
  // rewritten — that would be one random-access write per event into the
  // multi-MB positions_ array. Instead they go stale and remove_resident
  // verifies the slot before trusting an index (scan fallback; only the
  // drain bucket is ever sorted, so the case is rare and the scan short).
  // Lanes sort independently: a clean lane (common when only the delivery
  // band's narrow inserts dirtied the head) keeps its existing order —
  // pops and the unordered compaction both preserve it.
  if (!bucket.sorted_wide) {
    std::sort(bucket.items.begin(), bucket.items.end(),
              [](const Entry& a, const Entry& b) { return earlier(b, a); });
    bucket.sorted_wide = true;
  }
  if (!bucket.sorted_narrow) {
    std::sort(bucket.narrow.begin(), bucket.narrow.end(),
              [](const NarrowEntry& a, const NarrowEntry& b) {
                return earlier(b, a);
              });
    bucket.sorted_narrow = true;
  }
  head_cache_ = &bucket;
}

void EventQueue::spawn_rung(Bucket& bucket) {
  head_cache_ = nullptr;  // rung_ may reallocate below
  const std::size_t n = bucket_size(bucket);
  rung_nb_ = std::clamp(n / kRungFanout, kMinBuckets, kMaxRungBuckets);
  if (rung_.size() < rung_nb_) rung_.resize(rung_nb_);
  Time tmin = bucket.items.empty() ? bucket.narrow.front().at
                                   : bucket.items.front().at;
  Time tmax = tmin;
  for (const Entry& e : bucket.items) {
    tmin = std::min(tmin, e.at);
    tmax = std::max(tmax, e.at);
  }
  for (const NarrowEntry& e : bucket.narrow) {
    tmin = std::min(tmin, e.at);
    tmax = std::max(tmax, e.at);
  }
  if (!std::isfinite(tmin)) tmin = 0.0;  // see reseed(): avoid NaN offsets
  rung_start_ = tmin;
  rung_width_ = std::max((tmax - tmin) / static_cast<double>(rung_nb_),
                         std::max(std::abs(tmin), 1.0) * 1e-15);
  for (const Entry& e : bucket.items) {
    const std::size_t sub = clamp_bucket_index(
        (e.at - rung_start_) / rung_width_, 0, rung_nb_ - 1);
    Bucket& target = rung_[sub];
    if (!e.is_inline()) {
      positions_[e.slot()] =
          encode_bucket_pos(/*rung=*/true, sub, target.items.size());
    }
    target.items.push_back(e);
    target.sorted_wide = false;
    target.scan_valid = false;
  }
  for (const NarrowEntry& e : bucket.narrow) {
    const std::size_t sub = clamp_bucket_index(
        (e.at - rung_start_) / rung_width_, 0, rung_nb_ - 1);
    Bucket& target = rung_[sub];  // narrow entries have no position word
    target.narrow.push_back(e);
    target.sorted_narrow = false;
    target.scan_valid = false;
  }
  rung_live_ += n;
  wheel_live_ -= n;
  bucket.items.clear();
  bucket.narrow.clear();
  bucket.sorted_wide = false;
  bucket.sorted_narrow = false;
  bucket.scan_valid = false;
  rung_cur_ = 0;
  rung_active_ = true;
  ++stats_.rung_spawns;
}

void EventQueue::reseed() {
  FTGCS_ASSERT(wheel_live_ == 0 && rung_live_ == 0 &&
               !(bag_.empty() && bag_narrow_.empty()));
  head_cache_ = nullptr;  // wheel_ may reallocate below
  rung_active_ = false;
  const std::size_t n = bag_.size() + bag_narrow_.size();
  Time tmin = bag_.empty() ? bag_narrow_.front().at : bag_.front().at;
  Time tmax = tmin;
  for (const Entry& e : bag_) {
    tmin = std::min(tmin, e.at);
    tmax = std::max(tmax, e.at);
  }
  for (const NarrowEntry& e : bag_narrow_) {
    tmin = std::min(tmin, e.at);
    tmax = std::max(tmax, e.at);
  }
  wheel_nb_ = std::clamp(n, kMinBuckets, kMaxBuckets);
  if (wheel_.size() < wheel_nb_) wheel_.resize(wheel_nb_);
  // Events at kTimeInfinity (legal, if unusual) would make every offset
  // NaN if the window originated at infinity; origin 0 keeps their
  // offsets +inf instead, which clamp_bucket_index sends to the last
  // bucket — still exact (time, seq) pop order.
  if (!std::isfinite(tmin)) tmin = 0.0;
  // Auto-tune: a few events per bucket at the observed density, with the
  // window stretched kWindowStretch past the span so steady-state pushes
  // keep landing in buckets (see the constant's comment). The width floor
  // keeps indices finite when the whole population shares one timestamp
  // (relative epsilon, so 1e9-scale horizons still resolve).
  bucket_width_ =
      std::max(kWindowStretch * (tmax - tmin) / static_cast<double>(wheel_nb_),
               std::max(std::abs(tmin), 1.0) * 1e-15);
  win_start_ = tmin;
  win_end_ = win_start_ + bucket_width_ * static_cast<double>(wheel_nb_);
  wheel_cur_ = 0;
  // The bag is a plain vector: transfer with one linear scan, no pops.
  for (const Entry& e : bag_) {
    const std::size_t index = clamp_bucket_index(
        (e.at - win_start_) / bucket_width_, 0, wheel_nb_ - 1);
    Bucket& target = wheel_[index];
    if (!e.is_inline()) {
      positions_[e.slot()] =
          encode_bucket_pos(/*rung=*/false, index, target.items.size());
    }
    target.items.push_back(e);
    target.sorted_wide = false;
    target.scan_valid = false;
  }
  for (const NarrowEntry& e : bag_narrow_) {
    const std::size_t index = clamp_bucket_index(
        (e.at - win_start_) / bucket_width_, 0, wheel_nb_ - 1);
    Bucket& target = wheel_[index];
    target.narrow.push_back(e);
    target.sorted_narrow = false;
    target.scan_valid = false;
  }
  wheel_live_ = n;
  bag_.clear();
  bag_narrow_.clear();
  ++stats_.reseeds;
  stats_.bucket_count = std::max(stats_.bucket_count, wheel_nb_);
}

bool EventQueue::prepare_head() {
  for (;;) {
    if (rung_active_) {
      while (rung_cur_ < rung_nb_ && bucket_empty(rung_[rung_cur_])) {
        ++rung_cur_;
      }
      if (rung_cur_ < rung_nb_) {
        Bucket& bucket = rung_[rung_cur_];
        if (!bucket_sorted(bucket)) sort_bucket(bucket);
        head_cache_ = &bucket;
        return true;
      }
      rung_active_ = false;
      ++wheel_cur_;
    }
    while (wheel_cur_ < wheel_nb_ && bucket_empty(wheel_[wheel_cur_])) {
      ++wheel_cur_;
    }
    if (wheel_cur_ < wheel_nb_) {
      Bucket& bucket = wheel_[wheel_cur_];
      if (!bucket_sorted(bucket) && bucket_size(bucket) > kRungSpawnThreshold) {
        spawn_rung(bucket);
        continue;
      }
      if (!bucket_sorted(bucket)) sort_bucket(bucket);
      head_cache_ = &bucket;
      return true;
    }
    if (bag_.empty() && bag_narrow_.empty()) return false;
    reseed();
  }
}

Time EventQueue::next_time() const {
  if (backend_ == QueueBackend::kHeap) {
    return heap_.empty() ? kTimeInfinity : heap_[0].at;
  }
  // Sorting the drain bucket is logically const: the live event set and
  // the pop order are unchanged.
  EventQueue& self = const_cast<EventQueue&>(*this);
  if (!self.prepare_head()) return kTimeInfinity;
  const Bucket& b = *self.head_cache_;
  if (!b.narrow.empty() &&
      (b.items.empty() || earlier(b.narrow.back(), b.items.back()))) {
    return b.narrow.back().at;
  }
  return b.items.back().at;
}

EventId EventQueue::push_entry(Time t, std::uint32_t slot) {
  const std::uint64_t seq = next_seq_++;
  FTGCS_ASSERT(seq < (std::uint64_t{1} << kSeqBits));
  ++stats_.wide_events;
  if (backend_ == QueueBackend::kHeap) {
    const HeapEntry entry{t, seq << kSlotBits | slot};
    heap_.emplace_back();  // grow; sift places the entry into the hole chain
    place(entry, sift_up(entry, heap_.size() - 1));
  } else {
    Entry entry;
    entry.at = t;
    entry.key = seq << kSlotBits | slot;
    insert_ladder(entry);
  }
  return EventId{(static_cast<std::uint64_t>(slot) + 1) << 32 |
                 slots_[slot].gen};
}

EventId EventQueue::schedule(Time t, Callback fn) {
  FTGCS_EXPECTS(fn != nullptr);
  const std::uint32_t slot = acquire_slot();
  slots_[slot].set(EventKind::kClosure, 0);
  fns_[slot] = std::move(fn);
  return push_entry(t, slot);
}

EventId EventQueue::schedule_typed(Time t, EventKind kind, SinkId sink,
                                   const EventPayload& payload) {
  FTGCS_EXPECTS(kind != EventKind::kClosure);
  FTGCS_EXPECTS(sink < (1u << 24));  // packed next to the kind tag
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.set(kind, sink);
  s.payload = payload;
  return push_entry(t, slot);
}

void EventQueue::schedule_fire_only(Time t, EventKind kind, SinkId sink,
                                    const EventPayload& payload) {
  FTGCS_EXPECTS(kind != EventKind::kClosure);
  FTGCS_EXPECTS(sink < (1u << 24));
  if (backend_ == QueueBackend::kHeap || payload.x != 0.0 ||
      payload.d >= 256) {
    // The heap stores slotted entries only, and the 32-byte inline entry
    // has no room for payload.x (or a d tag beyond the inline range):
    // those events take the slotted path with identical (time, seq)
    // semantics (the returned id is simply dropped — fire-only ids are
    // unobservable).
    schedule_typed(t, kind, sink, payload);
    return;
  }
  const std::uint64_t seq = next_seq_++;
  FTGCS_ASSERT(seq < (std::uint64_t{1} << kSeqBits));
  ++stats_.wide_events;
  Entry entry;
  entry.at = t;
  entry.key = seq << kSlotBits | (kInlineBase + payload.d);
  entry.a = payload.a;
  entry.b = payload.b;
  entry.c = payload.c;
  entry.sink_kind = sink << 8 | static_cast<std::uint32_t>(kind);
  insert_ladder(entry);
}

void EventQueue::schedule_fire_only_group(Time base, const Duration* delays,
                                          std::size_t count, EventKind kind,
                                          SinkId sink,
                                          const EventPayload& proto,
                                          std::int32_t first_dest,
                                          const std::int32_t* rest_dests) {
  FTGCS_EXPECTS(kind != EventKind::kClosure);
  FTGCS_EXPECTS(sink < (1u << 24));
  if (count == 0) return;
  if (backend_ == QueueBackend::kHeap || proto.x != 0.0) {
    // Per-delivery fallback consumes sequence numbers in exactly the same
    // order, so the pop sequence is unchanged (the heap keeps its slotted
    // reference layout; x ≠ 0 has no home in the group record).
    EventPayload pl = proto;
    for (std::size_t i = 0; i < count; ++i) {
      pl.c = i == 0 ? first_dest : rest_dests[i - 1];
      schedule_fire_only(base + delays[i], kind, sink, pl);
    }
    return;
  }
  insert_ladder_group(base, delays, count, kind, sink, proto, first_dest,
                      rest_dests);
}

bool EventQueue::cancel(EventId id) {
  std::uint32_t slot;
  if (!decode_live(id, slot)) return false;
  if (backend_ == QueueBackend::kHeap) {
    remove_at(static_cast<std::size_t>(positions_[slot]));
  } else {
    remove_resident(slot);
  }
  bump_generation(slot);
  if (slots_[slot].kind() == EventKind::kClosure) fns_[slot] = nullptr;
  free_.push_back(slot);
  return true;
}

bool EventQueue::reschedule(EventId id, Time t) {
  std::uint32_t slot;
  if (!decode_live(id, slot)) return false;
  // Fresh sequence number: ties at the new time fire after everything
  // already scheduled there, exactly as a cancel + schedule would.
  const std::uint64_t seq = next_seq_++;
  FTGCS_ASSERT(seq < (std::uint64_t{1} << kSeqBits));
  const std::uint64_t key = seq << kSlotBits | slot;
  const std::uint64_t pos = positions_[slot];
  if (backend_ == QueueBackend::kHeap) {
    sift(HeapEntry{t, key}, static_cast<std::size_t>(pos));
    return true;
  }
  if (pos < (std::uint64_t{1} << 32) &&
      (t >= win_end_ || wheel_live_ + rung_live_ == 0)) {
    // Overflow entry staying in the overflow tier: the bag is unsorted,
    // so a far-future timer re-aim is one in-place overwrite.
    Entry& entry = bag_[static_cast<std::size_t>(pos)];
    entry.at = t;
    entry.key = key;
    return true;
  }
  if (pos >= (std::uint64_t{1} << 32) && (pos & kRungBit) == 0 &&
      t < win_end_) {
    // Timer re-aims move fire times by O(rho) — almost always within the
    // same bucket. Overwriting in place (the drain sort orders it) skips
    // the swap-remove + reinsert round trip.
    const std::size_t bucket_index =
        static_cast<std::size_t>((pos >> 32) - 1);
    const std::size_t idx = static_cast<std::uint32_t>(pos);
    const double off = (t - win_start_) / bucket_width_;
    const bool same_bucket = bucket_index > wheel_cur_ &&
                             off >= static_cast<double>(bucket_index) &&
                             off < static_cast<double>(bucket_index + 1);
    if (same_bucket) {
      Bucket& bucket = wheel_[bucket_index];
      if (idx < bucket.items.size() && bucket.items[idx].slot() == slot) {
        bucket.items[idx].at = t;
        bucket.items[idx].key = key;
        bucket.sorted_wide = false;
        bucket.scan_valid = false;
        return true;
      }
    }
  }
  remove_resident(slot);
  Entry entry;
  entry.at = t;
  entry.key = key;
  insert_ladder(entry);
  return true;
}

std::size_t EventQueue::pop_run_unordered(Time t_end, std::uint32_t sink_kind,
                                          BatchPredicate pred, const void* ctx,
                                          BatchedEvent* out, std::size_t max) {
  // The heap backend stays the ordered reference front-end: every event
  // fires through the exact (time, seq) path, which is what the
  // differential tests diff the partitioned ladder against.
  if (backend_ == QueueBackend::kHeap) return 0;
  std::size_t n = 0;
  // Running partition horizon: the earliest non-drainable entry seen so
  // far. Emission is STRICT (`at < bad_lim`): ties with a barrier keep
  // their (time, seq) interleaving on the ordered path, so only events
  // whose relative order is provably unobservable are reordered.
  Time bad_lim = kTimeInfinity;

  // Sweeps one bucket: refreshes its horizon scan if stale, emits every
  // drainable entry strictly below min(horizon, t_end), and compacts the
  // survivors in place (rewriting their positions — unlike the drain
  // sort, compaction moves entries that may later be cancelled or
  // re-aimed). Returns false when the sweep must stop: a sorted
  // (partially drained) head bucket, or the out buffer filled.
  const auto drain_bucket = [&](Bucket& bucket, bool rung,
                                std::size_t index) -> bool {
    std::vector<Entry>& items = bucket.items;
    std::vector<NarrowEntry>& narrow = bucket.narrow;
    if (items.empty() && narrow.empty()) return true;
    if (bucket_sorted(bucket)) {
      // A partially drained head belongs to the ordered path (its pops
      // are in flight); its minimum is the earlier of the two lanes' back
      // entries, and every later bucket sits at or above this bucket's
      // range — stop here.
      Time head = kTimeInfinity;
      if (!items.empty()) head = std::min(head, items.back().at);
      if (!narrow.empty()) head = std::min(head, narrow.back().at);
      bad_lim = std::min(bad_lim, head);
      return false;
    }
    bool decoded = false;  // this call's scan filled unordered_decode_
    if (!bucket.scan_valid) {
      // Pass 1 — horizon scan: the earliest entry that must NOT be
      // reordered. Slotted entries carry sink_kind 0 (never a real
      // channel), so timers/closures/cancellables are caught by the same
      // compare as foreign-channel traffic. The drainable minimum rides
      // along as the repeat-sweep guard below. Narrow decodes (a group
      // record plus a random adjacency read each) are kept for pass 2 —
      // any entry this scan admits, the emit below reuses verbatim.
      Time bad = kTimeInfinity;
      Time good = kTimeInfinity;
      EventPayload pl;
      for (const Entry& e : items) {
        if (e.sink_kind == sink_kind) {
          pl.a = e.a;
          pl.b = e.b;
          pl.c = e.c;
          pl.d = e.inline_d();
          if (pred(pl, ctx)) {
            good = std::min(good, e.at);
            continue;
          }
        }
        bad = std::min(bad, e.at);
      }
      const std::size_t mn0 = narrow.size();
      if (unordered_decode_.size() < mn0) unordered_decode_.resize(mn0);
      for (std::size_t i = 0; i < mn0; ++i) {
        const NarrowEntry& e = narrow[i];
        if (narrow_sink_kind(e) == sink_kind) {
          narrow_payload(e, unordered_decode_[i]);
          if (pred(unordered_decode_[i], ctx)) {
            good = std::min(good, e.at);
            continue;
          }
        }
        bad = std::min(bad, e.at);
      }
      decoded = true;
      bucket.bad_floor = bad;
      bucket.good_floor = good;
      bucket.scan_valid = true;
    }
    const Time lim = std::min(bad_lim, bucket.bad_floor);
    if (bucket.good_floor >= lim || bucket.good_floor > t_end) {
      // Nothing drainable below the horizon: O(1) skip on repeat sweeps
      // (the common shape while the ordered path works toward a barrier).
      bad_lim = std::min(bad_lim, bucket.bad_floor);
      return true;
    }
    // Pass 2 — emit + compact, one lane at a time (emission is unordered,
    // so lane interleaving is free). `lim ≤ bad_floor`, so `at < lim`
    // admits only drainable entries: no predicate re-evaluation here.
    const std::size_t m = items.size();
    std::size_t w = 0;
    std::size_t r = 0;
    for (; r < m; ++r) {
      const Entry& e = items[r];
      if (e.at < lim && e.at <= t_end) {
        if (n == max) break;  // buffer full: keep the tail
        BatchedEvent& slot = out[n++];
        slot.at = e.at;
        slot.payload.a = e.a;
        slot.payload.b = e.b;
        slot.payload.c = e.c;
        slot.payload.d = e.inline_d();
        slot.payload.x = 0.0;
        continue;
      }
      if (w != r) {
        items[w] = e;
        if (!e.is_inline()) {
          positions_[e.slot()] = encode_bucket_pos(rung, index, w);
        }
      }
      ++w;
    }
    for (; r < m; ++r) {  // buffer-full tail: compact without emitting
      if (w != r) {
        items[w] = items[r];
        if (!items[w].is_inline()) {
          positions_[items[w].slot()] = encode_bucket_pos(rung, index, w);
        }
      }
      ++w;
    }
    std::size_t took = m - w;
    if (m != w) items.resize(w);  // Entry is trivially destructible
    // Narrow lane: the same emit + compact, minus the positions rewrite
    // (narrow entries are never cancellable) plus the group retire.
    const std::size_t mn = narrow.size();
    std::size_t wn = 0;
    std::size_t rn = 0;
    for (; rn < mn; ++rn) {
      const NarrowEntry& e = narrow[rn];
      if (e.at < lim && e.at <= t_end) {
        if (n == max) break;
        BatchedEvent& slot = out[n++];
        slot.at = e.at;
        // Everything below lim passed the scan's predicate, so a scan run
        // by THIS call already decoded it (same index — the lane has not
        // been compacted in between). A cached scan means decoding here.
        if (decoded) {
          slot.payload = unordered_decode_[rn];
        } else {
          narrow_payload(e, slot.payload);
        }
        narrow_retire(e.key);
        continue;
      }
      if (wn != rn) narrow[wn] = e;
      ++wn;
    }
    for (; rn < mn; ++rn) {
      if (wn != rn) narrow[wn] = narrow[rn];
      ++wn;
    }
    took += mn - wn;
    if (mn != wn) narrow.resize(wn);
    if (took != 0) {
      if (rung) {
        rung_live_ -= took;
      } else {
        wheel_live_ -= took;
      }
    }
    if (n != max) {
      // Full pass: every drainable entry below min(lim, t_end) was
      // emitted, so the survivors sit at or above that. (On a buffer-full
      // break the old bound is still valid — just looser.)
      bucket.good_floor = std::min(lim, t_end);
    }
    bad_lim = std::min(bad_lim, bucket.bad_floor);
    return n != max;
  };

  // Sweep buckets in calendar order from the current drain position.
  // Bucket b's lower time bound prunes the sweep: entries of every bucket
  // except the drain head itself sit at or above their bucket's origin
  // (inserts floor the offset; only the drain bucket takes low-clamped
  // stragglers), so once a bucket origin reaches min(horizon, t_end)
  // nothing further can be emitted. A non-infinite horizon therefore
  // stops the sweep within one bucket of the barrier — the "sliver" the
  // ordered path still sorts.
  for (;;) {
    if (wheel_live_ + rung_live_ == 0) {
      // Window drained with no barrier found: rebuild it from the
      // overflow tier, exactly as prepare_head would, and keep sweeping.
      if (bag_.empty() && bag_narrow_.empty()) break;
      reseed();
    }
    bool cont = true;
    if (rung_active_) {
      for (std::size_t s = rung_cur_; cont && s < rung_nb_; ++s) {
        if (s != rung_cur_) {
          const Time lb =
              rung_start_ + static_cast<double>(s) * rung_width_;
          if (lb > t_end || lb >= bad_lim) {
            cont = false;
            break;
          }
        }
        cont = drain_bucket(rung_[s], /*rung=*/true, s);
      }
      for (std::size_t b = wheel_cur_ + 1; cont && b < wheel_nb_; ++b) {
        const Time lb = win_start_ + static_cast<double>(b) * bucket_width_;
        if (lb > t_end || lb >= bad_lim) break;
        cont = drain_bucket(wheel_[b], /*rung=*/false, b);
      }
    } else {
      for (std::size_t b = wheel_cur_; cont && b < wheel_nb_; ++b) {
        if (b != wheel_cur_) {
          const Time lb =
              win_start_ + static_cast<double>(b) * bucket_width_;
          if (lb > t_end || lb >= bad_lim) break;
        }
        cont = drain_bucket(wheel_[b], /*rung=*/false, b);
      }
    }
    if (!cont || wheel_live_ + rung_live_ != 0) break;
  }
  if (n != 0) {
    ++stats_.unordered_runs;
    stats_.unordered_events += n;
  }
  return n;
}

EventQueue::Fired EventQueue::pop() {
  Fired fired;
  const bool popped = pop_if_at_most(kTimeInfinity, fired);
  FTGCS_EXPECTS(popped);
  return fired;
}

}  // namespace ftgcs::sim
