// Cancellable discrete-event queue — typed, slot-pooled, allocation-free
// after warm-up.
//
// Events are (time, sequence) ordered; sequence numbers break ties FIFO so
// executions are fully deterministic. Each scheduled event occupies a slot
// in a pooled array; the slot index and a generation stamp are packed into
// the EventId, so stale handles (cancel-after-fire, slot reuse) are
// rejected by a stamp comparison — no map lookup anywhere. Slots are
// recycled through a free list: a steady-state simulation performs no
// allocation per event, neither for the bookkeeping nor for the work item
// (typed events carry a POD payload dispatched to a registered EventSink
// instead of a closure).
//
// The priority queue is an intrusive 4-ary heap in one contiguous vector:
// each slot knows its heap position, so
//   * cancel removes its entry directly (stamp bump + one targeted sift,
//     no tombstones to skip later), and
//   * reschedule — the dominant operation of logical-timer re-aiming —
//     moves the entry in place under a fresh sequence number, which is
//     observably identical to cancel+schedule but does half the heap work.
// 4-ary beats binary here: half the levels per sift, and the sibling scan
// stays in one cache line.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event.h"
#include "sim/time_types.h"
#include "support/assert.h"

namespace ftgcs::sim {

/// Opaque handle identifying a scheduled event: (slot+1, generation).
struct EventId {
  std::uint64_t value = 0;

  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
  explicit operator bool() const { return value != 0; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (legacy closure path). Events at
  /// equal time run in scheduling order. Returns a handle for `cancel`.
  EventId schedule(Time t, Callback fn);

  /// Schedules a typed event at absolute time `t`. The engine stores only
  /// the POD payload; the caller-side Simulator dispatches to the sink.
  /// This path never allocates once the pool is warm.
  EventId schedule_typed(Time t, EventKind kind, SinkId sink,
                         const EventPayload& payload);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op (returns false). Stamp bump + targeted
  /// heap removal; no search, no allocation.
  bool cancel(EventId id);

  /// Moves a pending event to time `t` under a fresh sequence number —
  /// observably identical to cancel(id) + re-schedule (same payload), but
  /// in place. Returns false (and does nothing) if `id` is no longer live.
  bool reschedule(EventId id, Time t);

  /// True if no live events remain.
  bool empty() const { return heap_.empty(); }

  /// Number of live (not cancelled, not fired) events.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event; kTimeInfinity when empty.
  Time next_time() const {
    return heap_.empty() ? kTimeInfinity : heap_[0].at;
  }

  /// Pops and returns the earliest live event. Requires !empty().
  struct Fired {
    Time at = 0.0;
    EventId id;
    EventKind kind = EventKind::kClosure;
    SinkId sink = kInvalidSink;
    EventPayload payload;
    Callback fn;
  };
  Fired pop();

  /// Single-inspection variant of next_time() + pop(): pops the earliest
  /// live event into `out` iff its time is ≤ `t_end`. The run loop's hot
  /// path — one head read per fired event instead of two.
  bool pop_if_at_most(Time t_end, Fired& out);

  /// Total events ever scheduled (for stats / microbenchmarks).
  /// Reschedules consume sequence numbers (they re-enter the FIFO order),
  /// so this counts logical schedules exactly like cancel+schedule would.
  std::uint64_t scheduled_count() const { return next_seq_ - 1; }

  /// Pre-sizes pool and heap so the first `capacity` concurrent events
  /// allocate nothing.
  void reserve(std::size_t capacity);

  /// Slots currently in the pool (diagnostics; high-water mark of
  /// concurrent events).
  std::size_t pool_size() const { return slots_.size(); }

 private:
  /// 40 bytes; closures live in the parallel fns_ array so the typed hot
  /// path never touches std::function storage.
  struct Slot {
    std::uint32_t gen = 1;  ///< never 0, so EventId.value != 0 always
    EventKind kind = EventKind::kClosure;
    SinkId sink = kInvalidSink;
    EventPayload payload;
  };
  /// 16 bytes — a 4-ary node's sibling group spans one cache line. `key`
  /// packs (seq << kSlotBits) | slot: comparing keys compares sequence
  /// numbers first (they are unique), and the slot rides along for free.
  struct HeapEntry {
    Time at;
    std::uint64_t key;

    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & ((1u << kSlotBits) - 1);
    }
  };
  /// 22/42 split: ≤ 4M concurrent events (a 40k-node full-mesh run keeps
  /// ~400k in flight) and ~4.4e12 lifetime schedules before the guarded
  /// abort — days of wall clock at current throughput.
  static constexpr unsigned kSlotBits = 22;
  static constexpr unsigned kSeqBits = 64 - kSlotBits;

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    // Branchless: heap order is data-random, so a short-circuit here is a
    // guaranteed misprediction fountain inside the sift loops.
    return (a.at < b.at) | ((a.at == b.at) & (a.key < b.key));
  }

  std::uint32_t acquire_slot();
  void bump_generation(std::uint32_t slot) {
    if (++slots_[slot].gen == 0) slots_[slot].gen = 1;  // 0 is the null id
  }
  /// Decodes a live id into its slot index, or returns false.
  bool decode_live(EventId id, std::uint32_t& slot) const;
  EventId push_entry(Time t, std::uint32_t slot);
  void fill_fired(const HeapEntry& head, Fired& out);

  void place(const HeapEntry& entry, std::size_t i) {
    heap_[i] = entry;
    positions_[entry.slot()] = static_cast<std::uint32_t>(i);
  }
  std::size_t sift_up(HeapEntry entry, std::size_t i);
  std::size_t sift_down(HeapEntry entry, std::size_t i);
  void sift(HeapEntry entry, std::size_t i);
  void remove_at(std::size_t i);

  std::vector<Slot> slots_;
  std::vector<Callback> fns_;  ///< parallel to slots_; closure events only
  /// Heap index of each slot's entry, parallel to slots_ but kept separate:
  /// sift moves touch only this dense array, not the fat slot records.
  std::vector<std::uint32_t> positions_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;
  std::uint64_t next_seq_ = 1;
};

// ---- inline hot path --------------------------------------------------------
// The fire loop and the sift helpers run millions of times per simulated
// second; defining them here lets the Simulator's run loop inline the
// whole pop path.

inline std::size_t EventQueue::sift_up(HeapEntry entry, std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    place(heap_[parent], i);
    i = parent;
  }
  return i;
}

inline std::size_t EventQueue::sift_down(HeapEntry entry, std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t child = first + 1; child < last; ++child) {
      best = earlier(heap_[child], heap_[best]) ? child : best;  // cmov
    }
    if (!earlier(heap_[best], entry)) break;
    place(heap_[best], i);
    i = best;
  }
  return i;
}

inline void EventQueue::sift(HeapEntry entry, std::size_t i) {
  const std::size_t up = sift_up(entry, i);
  place(entry, up == i ? sift_down(entry, i) : up);
}

inline void EventQueue::remove_at(std::size_t i) {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (i >= n) return;
  // Bottom-up deletion (Wegener): walk the hole to the bottom promoting
  // min-children — no compare against `moved` per level — then bubble
  // `moved` up from there. `moved` came from the bottom layer, so the
  // up-pass almost always stops immediately; this trades the sift-down
  // loop's unpredictable exit branch for one short predictable pass.
  std::size_t hole = i;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t child = first + 1; child < last; ++child) {
      best = earlier(heap_[child], heap_[best]) ? child : best;  // cmov
    }
    place(heap_[best], hole);
    hole = best;
  }
  place(moved, sift_up(moved, hole));
}

inline void EventQueue::fill_fired(const HeapEntry& head, Fired& out) {
  const std::uint32_t slot = head.slot();
  Slot& s = slots_[slot];
  out.at = head.at;
  out.id = EventId{(static_cast<std::uint64_t>(slot) + 1) << 32 | s.gen};
  out.kind = s.kind;
  out.sink = s.sink;
  out.payload = s.payload;
  if (s.kind == EventKind::kClosure) {
    out.fn = std::move(fns_[slot]);
    fns_[slot] = nullptr;  // drop captures now, not at slot reuse
  } else {
    out.fn = nullptr;
  }
  bump_generation(slot);  // the id is spent: cancel-after-fire no-ops
  free_.push_back(slot);
}

inline bool EventQueue::pop_if_at_most(Time t_end, Fired& out) {
  if (heap_.empty() || heap_[0].at > t_end) return false;
  const HeapEntry head = heap_[0];
  remove_at(0);
  fill_fired(head, out);
  return true;
}

}  // namespace ftgcs::sim
