#include "baselines/cluster_tree_sync.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "support/assert.h"

namespace ftgcs::baselines {

EchoClusterNode::EchoClusterNode(sim::Simulator& simulator,
                                 net::Network& network,
                                 const net::AugmentedTopology& topo,
                                 const core::Params& params, int node_id,
                                 int parent_cluster, int depth,
                                 double initial_logical)
    : sim_(simulator),
      net_(network),
      topo_(topo),
      params_(params),
      id_(node_id),
      parent_cluster_(parent_cluster),
      depth_(depth),
      clock_(0.0, 0.0, 1.0, simulator.now(), initial_logical),
      parent_counts_(static_cast<std::size_t>(params.k), 0) {
  FTGCS_EXPECTS(parent_cluster >= 0);
  FTGCS_EXPECTS(depth >= 1);
}

void EchoClusterNode::on_pulse(const net::Pulse& pulse, sim::Time now) {
  if (pulse.kind != net::PulseKind::kClusterPulse) return;
  if (topo_.cluster_of(pulse.sender) != parent_cluster_) return;
  const int member = topo_.index_in_cluster(pulse.sender);
  const int wave = ++parent_counts_[member];
  if (wave <= wave_fired_) return;  // stale (e.g. replayed) pulses
  if (++wave_hits_[wave] == params_.f + 1) {
    fire_wave(wave, now);
  }
}

void EchoClusterNode::fire_wave(int wave, sim::Time now) {
  wave_fired_ = wave;
  wave_hits_.erase(wave_hits_.begin(), wave_hits_.upper_bound(wave));
  // Root members pulse at logical (w−1)·T + τ1; each hop adds an expected
  // d − U/2 of transit.
  const double anchor = (wave - 1) * params_.T + params_.tau1 +
                        depth_ * (params_.d - params_.U / 2.0);
  clock_.jump(now, anchor);
  net::Pulse echo;
  echo.sender = id_;
  echo.kind = net::PulseKind::kClusterPulse;
  net_.broadcast(id_, echo);
}

ClusterTreeSystem::ClusterTreeSystem(net::Graph cluster_graph, Config config)
    : topo_(std::move(cluster_graph), config.params.k),
      config_(std::move(config)) {
  const net::Graph& cg = topo_.cluster_graph();
  cluster_parent_ = cg.bfs_tree(config_.root_cluster);
  cluster_depth_ = cg.bfs_distances(config_.root_cluster);

  sim::Rng master(config_.seed);
  auto delays = config_.delay_model
                    ? std::move(config_.delay_model)
                    : std::make_unique<net::UniformDelay>(config_.params.d,
                                                          config_.params.U);
  network_ = std::make_unique<net::Network>(sim_, topo_.adjacency(),
                                            std::move(delays), master.fork(1));

  root_members_.resize(topo_.num_nodes());
  echo_members_.resize(topo_.num_nodes());
  for (int id = 0; id < topo_.num_nodes(); ++id) {
    const auto& specs = config_.fault_plan.specs();
    const auto it = std::find_if(
        specs.begin(), specs.end(),
        [id](const byz::FaultSpec& s) { return s.node == id; });
    if (it != specs.end()) {
      byz::AttackContext ctx;
      ctx.self = id;
      ctx.cluster = topo_.cluster_of(id);
      ctx.index_in_cluster = topo_.index_in_cluster(id);
      ctx.sim = &sim_;
      ctx.net = network_.get();
      ctx.topo = &topo_;
      ctx.params = &config_.params;
      ctx.rng = master.fork(1000 + static_cast<std::uint64_t>(id));
      byz_nodes_.push_back(std::make_unique<byz::ByzantineNode>(
          std::move(ctx), byz::make_strategy(it->kind, it->param)));
      byz::ByzantineNode* raw = byz_nodes_.back().get();
      network_->register_handler(
          id, [raw](const net::Pulse& pulse, sim::Time now) {
            raw->on_pulse(pulse, now);
          });
      continue;
    }

    const int cluster = topo_.cluster_of(id);
    const int start_round =
        config_.cluster_round_offsets.empty()
            ? 1
            : config_.cluster_round_offsets[cluster] + 1;
    if (cluster == config_.root_cluster) {
      core::ClusterSyncConfig cfg;
      cfg.tau1 = config_.params.tau1;
      cfg.tau2 = config_.params.tau2;
      cfg.tau3 = config_.params.tau3;
      cfg.phi = config_.params.phi;
      cfg.mu = config_.params.mu;
      cfg.f = config_.params.f;
      cfg.k = config_.params.k;
      cfg.active = true;
      cfg.d = config_.params.d;
      cfg.U = config_.params.U;
      cfg.start_round = start_round;
      root_members_[id] = std::make_unique<core::ClusterSyncEngine>(
          sim_, cfg, 1.0, master.fork(2000 + static_cast<std::uint64_t>(id)));
      auto* engine = root_members_[id].get();
      engine->set_own_index(topo_.index_in_cluster(id));
      engine->on_pulse = [this, id](int, sim::Time) {
        net::Pulse pulse;
        pulse.sender = id;
        pulse.kind = net::PulseKind::kClusterPulse;
        network_->broadcast(id, pulse);
      };
      network_->register_handler(
          id, [this, engine](const net::Pulse& pulse, sim::Time now) {
            if (pulse.kind != net::PulseKind::kClusterPulse) return;
            if (topo_.cluster_of(pulse.sender) != config_.root_cluster)
              return;
            engine->on_member_pulse(topo_.index_in_cluster(pulse.sender),
                                    now);
          });
    } else {
      echo_members_[id] = std::make_unique<EchoClusterNode>(
          sim_, *network_, topo_, config_.params, id,
          cluster_parent_[cluster], cluster_depth_[cluster],
          (start_round - 1) * config_.params.T);
      auto* echo = echo_members_[id].get();
      network_->register_handler(
          id, [echo](const net::Pulse& pulse, sim::Time now) {
            echo->on_pulse(pulse, now);
          });
    }
  }

  drift_ = config_.drift_model
               ? std::move(config_.drift_model)
               : std::make_unique<clocks::ConstantDrift>(
                     config_.params.rho, config_.seed ^ 0x17eeULL,
                     /*spread=*/true);
}

void ClusterTreeSystem::start() {
  std::vector<clocks::RateSink> sinks;
  sinks.reserve(topo_.num_nodes());
  for (int id = 0; id < topo_.num_nodes(); ++id) {
    if (root_members_[id]) {
      auto* raw = root_members_[id].get();
      sinks.push_back([raw](sim::Time now, double rate) {
        raw->set_hardware_rate(now, rate);
      });
    } else if (echo_members_[id]) {
      auto* raw = echo_members_[id].get();
      sinks.push_back([raw](sim::Time now, double rate) {
        raw->set_hardware_rate(now, rate);
      });
    } else {
      sinks.push_back([](sim::Time, double) {});
    }
  }
  drift_->install(sim_, std::move(sinks));

  for (auto& member : root_members_) {
    if (member) member->start();
  }
  for (auto& byz_node : byz_nodes_) {
    byz_node->start();
  }
}

bool ClusterTreeSystem::is_correct(int node) const {
  return root_members_[node] != nullptr || echo_members_[node] != nullptr;
}

double ClusterTreeSystem::node_logical(int id) const {
  if (root_members_[id]) {
    return root_members_[id]->clock().read(sim_.now());
  }
  FTGCS_EXPECTS(echo_members_[id] != nullptr);
  return echo_members_[id]->logical(sim_.now());
}

std::optional<double> ClusterTreeSystem::cluster_clock(int cluster) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int member : topo_.members(cluster)) {
    if (!is_correct(member)) continue;
    const double value = node_logical(member);
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  if (hi < lo) return std::nullopt;
  return (lo + hi) / 2.0;
}

double ClusterTreeSystem::cluster_local_skew() const {
  double worst = 0.0;
  const net::Graph& g = topo_.cluster_graph();
  for (int b = 0; b < topo_.num_clusters(); ++b) {
    const auto lb = cluster_clock(b);
    if (!lb) continue;
    for (int c : g.neighbors(b)) {
      if (c < b) continue;
      const auto lc = cluster_clock(c);
      if (!lc) continue;
      worst = std::max(worst, std::abs(*lb - *lc));
    }
  }
  return worst;
}

double ClusterTreeSystem::cluster_global_skew() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < topo_.num_clusters(); ++c) {
    const auto value = cluster_clock(c);
    if (!value) continue;
    lo = std::min(lo, *value);
    hi = std::max(hi, *value);
  }
  return hi >= lo ? hi - lo : 0.0;
}

std::uint64_t ClusterTreeSystem::total_violations() const {
  std::uint64_t total = 0;
  for (const auto& member : root_members_) {
    if (member) total += member->violations();
  }
  return total;
}

}  // namespace ftgcs::baselines
