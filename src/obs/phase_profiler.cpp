// The ONLY wall-clock reads in src/obs/ live in this translation unit —
// the determinism lint bans clock reads everywhere else in the directory
// (the deterministic series must be a pure function of scenario + seed).
#include "obs/phase_profiler.h"

#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "support/assert.h"

namespace ftgcs::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

PhaseProfiler::PhaseProfiler(const std::string& path) : path_(path) {
  FTGCS_EXPECTS(!path_.empty());
  file_ = std::fopen(path_.c_str(), "wb");
  FTGCS_EXPECTS(file_ != nullptr);
  line_ = "{\"schema\":\"ftgcs-profile-v1\",\"plane\":\"nondeterministic\"}\n";
  std::fwrite(line_.data(), 1, line_.size(), file_);
}

PhaseProfiler::~PhaseProfiler() { finish(); }

void PhaseProfiler::bind_shards(int shards) {
  FTGCS_EXPECTS(shards >= 0);
  slots_.assign(static_cast<std::size_t>(shards), ShardSlot{});
}

void PhaseProfiler::phase_begin(int shard, Phase phase) {
  slots_[static_cast<std::size_t>(shard)]
      .start_ns[static_cast<int>(phase)] = now_ns();
}

void PhaseProfiler::phase_end(int shard, Phase phase) {
  ShardSlot& slot = slots_[static_cast<std::size_t>(shard)];
  const int p = static_cast<int>(phase);
  slot.total_ns[p] += now_ns() - slot.start_ns[p];
}

void PhaseProfiler::count_window(int shard) {
  ++slots_[static_cast<std::size_t>(shard)].windows;
}

void PhaseProfiler::span_begin(const char* name) {
  for (int i = 0; i < num_spans_; ++i) {
    if (std::strcmp(spans_[i].name, name) == 0) {
      spans_[i].start_ns = now_ns();
      return;
    }
  }
  FTGCS_EXPECTS(num_spans_ < kMaxSpans);
  spans_[num_spans_].name = name;
  spans_[num_spans_].start_ns = now_ns();
  ++num_spans_;
}

void PhaseProfiler::span_end(const char* name) {
  for (int i = 0; i < num_spans_; ++i) {
    if (std::strcmp(spans_[i].name, name) == 0) {
      spans_[i].total_ns += now_ns() - spans_[i].start_ns;
      return;
    }
  }
  FTGCS_EXPECTS(!"span_end without span_begin");
}

void PhaseProfiler::probe_diag(double at,
                               const sim::EventQueue::TierStats& tiers,
                               const std::vector<ShardWindowDiag>& shards) {
  if (file_ == nullptr) return;
  line_.clear();
  line_ += "{\"section\":\"diag\",\"t\":";
  append_json_double(line_, at);
  line_ += ",\"narrow\":";
  append_json_u64(line_, tiers.narrow_events);
  line_ += ",\"wide\":";
  append_json_u64(line_, tiers.wide_events);
  line_ += ",\"groups\":";
  append_json_u64(line_, tiers.group_inserts);
  line_ += ",\"entry_bytes\":";
  append_json_u64(line_, tiers.entry_bytes());
  line_ += ",\"unordered\":";
  append_json_u64(line_, tiers.unordered_events);
  line_ += ",\"ordered_runs\":";
  append_json_u64(line_, tiers.ordered_run_events);
  line_ += ",\"buckets\":";
  append_json_u64(line_, static_cast<std::uint64_t>(tiers.bucket_count));
  line_ += ",\"overflow_peak\":";
  append_json_u64(line_, static_cast<std::uint64_t>(tiers.overflow_peak));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    char key[48];
    std::snprintf(key, sizeof(key), ",\"s%zu_routed\":", s);
    line_ += key;
    append_json_u64(line_, shards[s].routed);
    std::snprintf(key, sizeof(key), ",\"s%zu_mailbox_peak\":", s);
    line_ += key;
    append_json_u64(line_, shards[s].mailbox_peak);
    std::snprintf(key, sizeof(key), ",\"s%zu_fired\":", s);
    line_ += key;
    append_json_u64(line_, shards[s].fired);
  }
  line_ += "}\n";
  std::fwrite(line_.data(), 1, line_.size(), file_);
}

double PhaseProfiler::imbalance() const {
  std::uint64_t max_run = 0;
  std::uint64_t sum_run = 0;
  for (const ShardSlot& slot : slots_) {
    const std::uint64_t run = slot.total_ns[static_cast<int>(Phase::kRun)];
    if (run > max_run) max_run = run;
    sum_run += run;
  }
  if (sum_run == 0) return 0.0;
  const double mean =
      static_cast<double>(sum_run) / static_cast<double>(slots_.size());
  return static_cast<double>(max_run) / mean;
}

PhaseProfiler::PhaseTotals PhaseProfiler::totals() const {
  PhaseTotals t;
  for (const ShardSlot& slot : slots_) {
    t.merge_ms += to_ms(slot.total_ns[static_cast<int>(Phase::kMerge)]);
    t.run_ms += to_ms(slot.total_ns[static_cast<int>(Phase::kRun)]);
    t.collect_ms += to_ms(slot.total_ns[static_cast<int>(Phase::kCollect)]);
  }
  return t;
}

void PhaseProfiler::finish() {
  if (file_ == nullptr) return;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const ShardSlot& slot = slots_[s];
    line_.clear();
    line_ += "{\"section\":\"phase\",\"shard\":";
    append_json_u64(line_, s);
    line_ += ",\"merge_ms\":";
    append_json_double(line_,
                       to_ms(slot.total_ns[static_cast<int>(Phase::kMerge)]));
    line_ += ",\"run_ms\":";
    append_json_double(line_,
                       to_ms(slot.total_ns[static_cast<int>(Phase::kRun)]));
    line_ += ",\"wait_ms\":";
    append_json_double(
        line_, to_ms(slot.total_ns[static_cast<int>(Phase::kCollect)]));
    line_ += ",\"windows\":";
    append_json_u64(line_, slot.windows);
    line_ += "}\n";
    std::fwrite(line_.data(), 1, line_.size(), file_);
  }
  if (!slots_.empty()) {
    const PhaseTotals t = totals();
    line_.clear();
    line_ += "{\"section\":\"summary\",\"shards\":";
    append_json_u64(line_, slots_.size());
    line_ += ",\"merge_ms\":";
    append_json_double(line_, t.merge_ms);
    line_ += ",\"run_ms\":";
    append_json_double(line_, t.run_ms);
    line_ += ",\"wait_ms\":";
    append_json_double(line_, t.collect_ms);
    line_ += ",\"imbalance\":";
    append_json_double(line_, imbalance());
    line_ += "}\n";
    std::fwrite(line_.data(), 1, line_.size(), file_);
  }
  for (int i = 0; i < num_spans_; ++i) {
    line_.clear();
    line_ += "{\"section\":\"span\",\"name\":\"";
    line_ += spans_[i].name;
    line_ += "\",\"ms\":";
    append_json_double(line_, to_ms(spans_[i].total_ns));
    line_ += "}\n";
    std::fwrite(line_.data(), 1, line_.size(), file_);
  }
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace ftgcs::obs
