#include "sim/simulator.h"

#include <utility>

#include "support/assert.h"

namespace ftgcs::sim {

EventId Simulator::at(Time t, Callback fn) {
  FTGCS_EXPECTS(t >= now_);
  return queue_.schedule(t, std::move(fn));
}

EventId Simulator::after(Duration dt, Callback fn) {
  FTGCS_EXPECTS(dt >= 0.0);
  return queue_.schedule(now_ + dt, std::move(fn));
}

SinkId Simulator::register_sink(EventSink* sink) {
  FTGCS_EXPECTS(sink != nullptr);
  sinks_.push_back(sink);
  return static_cast<SinkId>(sinks_.size() - 1);
}

EventId Simulator::post_at(Time t, EventKind kind, SinkId sink,
                           const EventPayload& payload) {
  FTGCS_EXPECTS(t >= now_);
  FTGCS_EXPECTS(sink < sinks_.size());
  return queue_.schedule_typed(t, kind, sink, payload);
}

EventId Simulator::post_after(Duration dt, EventKind kind, SinkId sink,
                              const EventPayload& payload) {
  FTGCS_EXPECTS(dt >= 0.0);
  FTGCS_EXPECTS(sink < sinks_.size());
  return queue_.schedule_typed(now_ + dt, kind, sink, payload);
}

void Simulator::post_fire_only_after(Duration dt, EventKind kind, SinkId sink,
                                     const EventPayload& payload) {
  FTGCS_EXPECTS(dt >= 0.0);
  FTGCS_EXPECTS(sink < sinks_.size());
  queue_.schedule_fire_only(now_ + dt, kind, sink, payload);
}

void Simulator::dispatch(EventQueue::Fired& fired) {
  if (fired.kind == EventKind::kClosure) {
    fired.fn();
  } else {
    sinks_[fired.sink]->on_event(fired.kind, fired.payload, now_);
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  FTGCS_ASSERT(fired.at >= now_);
  now_ = fired.at;
  ++fired_;
  dispatch(fired);
  return true;
}

void Simulator::run_until(Time t_end) {
  FTGCS_EXPECTS(t_end >= now_);
  EventQueue::Fired fired;
  while (queue_.pop_if_at_most(t_end, fired)) {
    FTGCS_ASSERT(fired.at >= now_);
    now_ = fired.at;
    ++fired_;
    dispatch(fired);
  }
  now_ = t_end;
}

}  // namespace ftgcs::sim
