// Srikanth–Toueg propose-and-pull baseline (paper App. A, [20]).
#include "baselines/srikanth_toueg.h"

#include <gtest/gtest.h>

namespace ftgcs::baselines {
namespace {

SrikanthTouegSystem::Config base_config() {
  SrikanthTouegSystem::Config config;
  config.n = 4;
  config.f = 1;
  config.rho = 1e-3;
  config.d = 1.0;
  config.U = 0.1;
  config.period = 10.0;
  config.seed = 5;
  return config;
}

TEST(SrikanthToueg, RoundsProgressFaultFree) {
  SrikanthTouegSystem system(base_config());
  system.start();
  system.run_until(100.0);
  // ~10 periods: every correct node fired about that many rounds.
  EXPECT_GE(system.min_round(), 8);
}

TEST(SrikanthToueg, SkewBoundedByDelayScale) {
  SrikanthTouegSystem system(base_config());
  system.start();
  double worst = 0.0;
  for (int step = 1; step <= 100; ++step) {
    system.run_until(step * 5.0);
    worst = std::max(worst, system.skew());
  }
  // O(d) guarantee (constant ≈ 2: one pull chain plus delay spread).
  EXPECT_LE(worst, 2.5 * base_config().d + 0.2);
}

TEST(SrikanthToueg, ToleratesFSilentFaults) {
  SrikanthTouegSystem::Config config = base_config();
  config.silent_faults = 1;
  SrikanthTouegSystem system(std::move(config));
  system.start();
  double worst = 0.0;
  for (int step = 1; step <= 100; ++step) {
    system.run_until(step * 5.0);
    worst = std::max(worst, system.skew());
  }
  EXPECT_GE(system.min_round(), 8);
  EXPECT_LE(worst, 2.5 * base_config().d + 0.2);
}

TEST(SrikanthToueg, PullAdvancesLaggards) {
  // A node whose hardware clock runs at the slow end still fires each
  // round within ~d of the fast nodes: the f+1 pull drags it forward.
  SrikanthTouegSystem::Config config = base_config();
  config.rho = 0.05;  // exaggerated drift so the pull is load-bearing
  SrikanthTouegSystem system(std::move(config));
  system.start();
  system.run_until(200.0);
  EXPECT_GE(system.min_round(), 15);
  // Without the pull the slowest node would lag by rounds·ρ·P ≈ 10 by
  // now; with it, everyone is within a delay of the pack.
  EXPECT_LE(system.pulse_spread(), 2.0 * base_config().d);
}

TEST(SrikanthToueg, LargerCliqueLargerBudget) {
  SrikanthTouegSystem::Config config = base_config();
  config.n = 7;
  config.f = 2;
  config.silent_faults = 2;
  config.seed = 9;
  SrikanthTouegSystem system(std::move(config));
  system.start();
  system.run_until(100.0);
  EXPECT_GE(system.min_round(), 8);
  EXPECT_LE(system.skew(), 2.5 * base_config().d + 0.2);
}

TEST(SrikanthToueg, RejectsInvalidResilience) {
  SrikanthTouegSystem::Config config = base_config();
  config.n = 3;  // n must exceed 3f
  EXPECT_DEATH(SrikanthTouegSystem{std::move(config)}, "precondition");
}

}  // namespace
}  // namespace ftgcs::baselines
