// Cancellable discrete-event queue.
//
// Events are (time, sequence) ordered; sequence numbers break ties FIFO so
// executions are fully deterministic. Cancellation is lazy: the handle's
// callback slot is erased and the heap entry is skipped on pop. This keeps
// schedule/cancel O(log n) amortized without a decrease-key structure.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time_types.h"

namespace ftgcs::sim {

/// Opaque handle identifying a scheduled event.
struct EventId {
  std::uint64_t value = 0;

  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
  explicit operator bool() const { return value != 0; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `t`. Events at equal time run in
  /// scheduling order. Returns a handle usable with `cancel`.
  EventId schedule(Time t, Callback fn);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op (returns false).
  bool cancel(EventId id);

  /// True if no live events remain.
  bool empty() const { return live_.empty(); }

  /// Number of live (not cancelled, not fired) events.
  std::size_t size() const { return live_.size(); }

  /// Time of the earliest live event; kTimeInfinity when empty.
  Time next_time() const;

  /// Pops and returns the earliest live event. Requires !empty().
  struct Fired {
    Time at;
    EventId id;
    Callback fn;
  };
  Fired pop();

  /// Total events ever scheduled (for stats / microbenchmarks).
  std::uint64_t scheduled_count() const { return next_seq_ - 1; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_dead_heads() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> live_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace ftgcs::sim
