// Parameter explorer: derive and print every constant of the construction
// for user-supplied model inputs, in both presets, with feasibility checks
// and the bounds the theorems predict.
//
//   ./parameter_explorer [rho] [d] [U] [f]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/params.h"
#include "metrics/table.h"

namespace {

void show(const char* name, const ftgcs::core::Params& p, int diameter) {
  std::printf("---- %s ----\n%s", name, p.summary().c_str());
  std::printf("feasibility:\n%s", p.feasibility_report().c_str());
  if (p.feasible()) {
    std::printf("predictions:\n");
    std::printf("  intra-cluster skew bound     : %.6g\n",
                p.intra_cluster_skew_bound());
    std::printf("  global skew bound (D=%d)      : %.6g\n", diameter,
                p.predicted_global_skew(diameter));
    std::printf("  local cluster skew (D=%d)     : %.6g\n", diameter,
                p.predicted_local_skew(p.predicted_global_skew(diameter)));
    std::printf("  fast-cluster rate >= %.8f\n",
                p.fast_cluster_rate_lower_bound());
    std::printf("  slow-cluster rate in [%.8f, %.8f]\n",
                p.slow_cluster_rate_lower_bound(),
                p.slow_cluster_rate_upper_bound());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftgcs;

  const double rho = argc > 1 ? std::atof(argv[1]) : 1e-4;
  const double d = argc > 2 ? std::atof(argv[2]) : 1.0;
  const double U = argc > 3 ? std::atof(argv[3]) : 0.01;
  const int f = argc > 4 ? std::atoi(argv[4]) : 1;
  const int diameter = 16;

  std::printf("model inputs: rho=%g d=%g U=%g f=%d\n\n", rho, d, U, f);

  show("practical preset", core::Params::practical(rho, d, U, f), diameter);
  // paper_strict needs very small rho; derive at a feasible value so the
  // table is always meaningful.
  const double strict_rho = std::min(rho, 1e-6);
  std::printf("(paper_strict shown at rho=%g — eq. (5) requires "
              "rho < eps/132 ~ 1.8e-6)\n\n",
              strict_rho);
  show("paper_strict preset (eq. 5)",
       core::Params::paper_strict(strict_rho, d, U, f), diameter);

  // Inequality (1): reliability table.
  std::printf("---- Inequality (1): P[cluster has > f faults] ----\n");
  metrics::Table table({"f", "k=3f+1", "p=0.001", "p=0.01", "p=0.05",
                        "bound(3ep)^(f+1) @0.01"});
  for (int fi = 0; fi <= 4; ++fi) {
    table.add_row(
        {metrics::Table::integer(fi), metrics::Table::integer(3 * fi + 1),
         metrics::Table::num(core::cluster_failure_probability(fi, 0.001), 3),
         metrics::Table::num(core::cluster_failure_probability(fi, 0.01), 3),
         metrics::Table::num(core::cluster_failure_probability(fi, 0.05), 3),
         metrics::Table::num(core::cluster_failure_bound(fi, 0.01), 3)});
  }
  table.print(std::cout);
  return 0;
}
