// Columnar node table + batched dispatch path: crash-stop semantics, the
// table-backed snapshot, and invariance of the execution under different
// drain batchings (run_until boundaries, heap vs ladder).
#include "core/node_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "core/ftgcs_system.h"
#include "metrics/skew_tracker.h"
#include "net/graph.h"
#include "sim/rng.h"

namespace ftgcs::core {
namespace {

Params practical() { return Params::practical(1e-3, 1.0, 0.01, 1); }

struct NodeActivity {
  int round = 0;
  std::size_t armed = 0;
  std::vector<int> replica_rounds;
  std::vector<std::size_t> replica_armed;
  std::uint64_t dropped = 0;
  std::uint64_t duplicates = 0;
  std::array<std::uint64_t, 4> mode_counts{};

  static NodeActivity of(FtGcsNode& node) {
    NodeActivity a;
    a.round = node.engine().round();
    a.armed = node.engine().armed_timers();
    EstimateBank& bank = node.estimates();
    for (std::size_t i = 0; i < bank.clusters().size(); ++i) {
      const ClusterSyncEngine& replica = bank.replica_at(i);
      a.replica_rounds.push_back(replica.round());
      a.replica_armed.push_back(replica.armed_timers());
    }
    a.dropped = node.engine().dropped_pulses();
    a.duplicates = node.engine().duplicate_pulses();
    a.mode_counts = node.mode_counts();
    return a;
  }
};

TEST(CrashStop, CrashedNodeProcessesNothingFurther) {
  const Params params = practical();
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 21;
  FtGcsSystem system(net::Graph::line(2), std::move(config));
  const int victim = system.topology().node(0, 1);
  system.node(victim).crash_at(10.0 * params.T);
  system.start();

  system.run_until(12.0 * params.T);
  ASSERT_TRUE(system.node(victim).crashed());
  ASSERT_TRUE(system.node_table().crashed(victim));
  const NodeActivity at_crash = NodeActivity::of(system.node(victim));

  // Every timer family is cancelled at the instant of the crash.
  EXPECT_EQ(at_crash.armed, 0u);
  for (std::size_t armed : at_crash.replica_armed) EXPECT_EQ(armed, 0u);

  system.run_until(40.0 * params.T);
  const NodeActivity later = NodeActivity::of(system.node(victim));

  // The crashed node's protocol state is frozen: no round transitions, no
  // re-armed timers, no pulse processing (deliveries hit the null sink),
  // no further mode decisions.
  EXPECT_EQ(later.round, at_crash.round);
  EXPECT_EQ(later.armed, 0u);
  EXPECT_EQ(later.replica_rounds, at_crash.replica_rounds);
  for (std::size_t armed : later.replica_armed) EXPECT_EQ(armed, 0u);
  EXPECT_EQ(later.dropped, at_crash.dropped);
  EXPECT_EQ(later.duplicates, at_crash.duplicates);
  EXPECT_EQ(later.mode_counts, at_crash.mode_counts);

  // Meanwhile the rest of the system kept running and stayed within the
  // intra-cluster bound (one crash = the f budget).
  const int alive = system.topology().node(0, 0);
  EXPECT_GT(system.node(alive).engine().round(), at_crash.round + 20);
  SystemColumns columns;
  system.snapshot_columns(columns);
  EXPECT_EQ(columns.correct[static_cast<std::size_t>(victim)], 0);
  const auto skews = metrics::measure_skews(columns, system.topology());
  EXPECT_LE(skews.intra_cluster, params.intra_cluster_skew_bound());
}

TEST(CrashStop, EmissionTimerDoesNotResurrectOnRateChange) {
  // A crashed node still receives drift-model rate pushes; none of them
  // may re-arm the max-estimator emission schedule.
  const Params params = practical();
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 22;
  FtGcsSystem system(net::Graph::line(1), std::move(config));
  const int victim = system.topology().node(0, 0);
  system.node(victim).crash_at(5.0 * params.T);
  system.start();
  system.run_until(6.0 * params.T);
  ASSERT_TRUE(system.node(victim).crashed());
  const int round_at_crash = system.node(victim).engine().round();
  EXPECT_EQ(system.node(victim).engine().armed_timers(), 0u);
  // Push a legal rate change straight at the crashed node (what a drift
  // model would do) and run on: no new events may originate from it.
  system.node(victim).set_hardware_rate(system.simulator().now(), 1.0);
  system.run_until(8.0 * params.T);
  EXPECT_EQ(system.node(victim).engine().armed_timers(), 0u);
  EXPECT_EQ(system.node(victim).engine().round(), round_at_crash);
}

TEST(NodeTable, ColumnarSnapshotMatchesPerNodeState) {
  const Params params = practical();
  net::AugmentedTopology topo(net::Graph::line(3), params.k);
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 23;
  config.fault_plan = byz::FaultPlan::in_cluster(
      topo, 1, 1, byz::StrategyKind::kSilent, 0.0, 23);
  FtGcsSystem system(net::Graph::line(3), std::move(config));
  const int victim = system.topology().node(2, 0);
  system.node(victim).crash_at(7.0 * params.T);
  system.start();
  system.run_until(15.0 * params.T);

  SystemColumns columns;
  system.snapshot_columns(columns);
  const SystemSnapshot snapshot = system.snapshot();
  ASSERT_EQ(columns.num_nodes(), static_cast<int>(snapshot.nodes.size()));
  for (int id = 0; id < columns.num_nodes(); ++id) {
    const auto& row = snapshot.nodes[static_cast<std::size_t>(id)];
    const auto u = static_cast<std::size_t>(id);
    EXPECT_EQ(columns.correct[u] != 0, row.correct) << "node " << id;
    if (!row.correct) continue;
    // The lane clock mirror must reproduce LogicalClock::read bit-exactly.
    EXPECT_EQ(columns.logical[u], row.logical) << "node " << id;
    EXPECT_EQ(columns.gamma[u], row.gamma) << "node " << id;
  }
}

TEST(NodeTable, ExecutionInvariantUnderDrainBatching) {
  // The batch drain must be unobservable: running to one horizon in a
  // single run_until (long pure-receive runs) and in many tiny increments
  // (every boundary breaks a run) must execute the identical schedule, on
  // both engine backends.
  const Params params = practical();
  const double horizon = 12.0 * params.T;
  const auto run = [&](sim::QueueBackend backend, int increments) {
    FtGcsSystem::Config config;
    config.params = params;
    config.seed = 24;
    config.engine = backend;
    FtGcsSystem system(net::Graph::line(3), std::move(config));
    system.start();
    for (int i = 1; i <= increments; ++i) {
      system.run_until(horizon * i / increments);
    }
    SystemColumns columns;
    system.snapshot_columns(columns);
    columns.at = 0.0;  // compare state, not the probe instant
    struct Result {
      std::uint64_t events;
      std::vector<double> logical;
      std::vector<std::int32_t> gamma;
    };
    return Result{system.simulator().fired_events(), columns.logical,
                  columns.gamma};
  };
  const auto whole = run(sim::QueueBackend::kLadder, 1);
  const auto sliced = run(sim::QueueBackend::kLadder, 997);
  const auto heap_whole = run(sim::QueueBackend::kHeap, 1);
  const auto heap_sliced = run(sim::QueueBackend::kHeap, 997);
  EXPECT_EQ(whole.events, sliced.events);
  EXPECT_EQ(whole.logical, sliced.logical);
  EXPECT_EQ(whole.gamma, sliced.gamma);
  EXPECT_EQ(whole.events, heap_whole.events);
  EXPECT_EQ(whole.logical, heap_whole.logical);
  EXPECT_EQ(whole.gamma, heap_whole.gamma);
  EXPECT_EQ(heap_whole.events, heap_sliced.events);
  EXPECT_EQ(heap_whole.logical, heap_sliced.logical);
}

// The partitioned drain's proof obligation, pinned: committing one
// tranche of receives to a lane in ANY order must produce bit-identical
// lane state (arrival slots, own_arrival, dropped, duplicates). The
// min-combine in lane_commit is what buys this — see the ORDER
// INDEPENDENCE comment in core/receive_lane.h.
TEST(ReceiveLane, CommitOrderIndependentWithinATranche) {
  constexpr int k = 4;
  const auto fresh = [] {
    ReceiveLane lane;
    lane.arrivals = lane.inline_arrivals;
    for (double& slot : lane.inline_arrivals) slot = kUnsetArrival;
    lane.clock.l0 = 100.0;
    lane.clock.t0 = 10.0;
    lane.clock.rate = 1.25;
    lane.own_index = 2;
    lane.listening = 1;
    return lane;
  };

  // A tranche with duplicates (several receives per member, distinct
  // times), the own member among them, and one member unheard.
  struct Receive {
    int member;
    double at;
  };
  std::vector<Receive> tranche = {
      {0, 11.5}, {1, 11.75}, {0, 11.25}, {2, 12.0},
      {1, 11.6}, {2, 11.9},  {0, 11.8},
  };

  const auto commit_all = [&](ReceiveLane& lane) {
    for (const Receive& r : tranche) {
      lane_commit(lane, r.member, lane_arrival_value(lane, r.at));
    }
  };
  ReceiveLane expected = fresh();
  commit_all(expected);

  // Every rotation + a few swap-shuffles of the tranche.
  sim::Rng rng(41);
  for (int perm = 0; perm < 24; ++perm) {
    if (perm < static_cast<int>(tranche.size())) {
      std::rotate(tranche.begin(), tranche.begin() + 1, tranche.end());
    } else {
      const std::size_t a = rng.below(tranche.size());
      const std::size_t b = rng.below(tranche.size());
      std::swap(tranche[a], tranche[b]);
    }
    ReceiveLane lane = fresh();
    commit_all(lane);
    for (int m = 0; m < k; ++m) {
      const double want = expected.inline_arrivals[m];
      const double got = lane.inline_arrivals[m];
      if (want == want) {
        EXPECT_EQ(want, got) << "member " << m;
      } else {
        EXPECT_NE(got, got) << "member " << m;  // still unheard
      }
    }
    EXPECT_EQ(expected.own_arrival, lane.own_arrival);
    EXPECT_EQ(expected.dropped, lane.dropped);
    EXPECT_EQ(expected.duplicates, lane.duplicates);
  }

  // Not listening: every receive is a pure drop in any order.
  ReceiveLane deaf = fresh();
  deaf.listening = 0;
  commit_all(deaf);
  EXPECT_EQ(deaf.dropped, tranche.size());
  for (double slot : deaf.inline_arrivals) EXPECT_NE(slot, slot);
}

}  // namespace
}  // namespace ftgcs::core
