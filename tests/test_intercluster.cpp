// InterclusterController decision policy (Algorithm 2 + Theorem C.3):
// priority FT > ST > catch-up > default-slow, and the weighted variant.
#include "core/intercluster.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftgcs::core {
namespace {

constexpr double kKappa = 3.0;
constexpr double kSlack = 1.0;  // δ = κ/3, the Lemma 4.8 choice
constexpr double kCGlobal = 6.0;

InterclusterController controller(bool global_module = true) {
  return InterclusterController(kKappa, kSlack, kCGlobal, global_module);
}

TEST(Intercluster, FastTriggerWins) {
  const auto ctl = controller();
  // Neighbor 2κ−δ = 5 ahead → FT(s=1).
  const std::vector<double> ests{6.0};
  const ModeDecision d = ctl.decide(0.0, ests, 0.0);
  EXPECT_EQ(d.gamma, 1);
  EXPECT_EQ(d.reason, ModeReason::kFastTrigger);
}

TEST(Intercluster, SlowTriggerWhenAhead) {
  const auto ctl = controller();
  // We lead by κ−δ = 2 → ST(s=1).
  const std::vector<double> ests{-2.5};
  const ModeDecision d = ctl.decide(0.0, ests, 0.0);
  EXPECT_EQ(d.gamma, 0);
  EXPECT_EQ(d.reason, ModeReason::kSlowTrigger);
}

TEST(Intercluster, CatchUpWhenNoTriggerAndFarBehindMax) {
  const auto ctl = controller();
  // Neighbors level with us (no triggers), but M says the system max is
  // far ahead: L ≤ M − c·δ = M − 6.
  const std::vector<double> ests{0.5};
  const ModeDecision d = ctl.decide(0.0, ests, 7.0);
  EXPECT_EQ(d.gamma, 1);
  EXPECT_EQ(d.reason, ModeReason::kMaxCatchUp);
}

TEST(Intercluster, SlowTriggerBeatsCatchUp) {
  const auto ctl = controller();
  // ST holds AND we are far behind the max: Theorem C.3's policy obeys
  // the triggers first (the second rule applies only "if neither holds").
  const std::vector<double> ests{-2.5};
  const ModeDecision d = ctl.decide(0.0, ests, 100.0);
  EXPECT_EQ(d.gamma, 0);
  EXPECT_EQ(d.reason, ModeReason::kSlowTrigger);
}

TEST(Intercluster, DefaultSlowOtherwise) {
  const auto ctl = controller();
  const std::vector<double> ests{0.5, -0.5};
  const ModeDecision d = ctl.decide(0.0, ests, 1.0);
  EXPECT_EQ(d.gamma, 0);
  EXPECT_EQ(d.reason, ModeReason::kDefaultSlow);
}

TEST(Intercluster, DisabledGlobalModuleNeverCatchesUp) {
  const auto ctl = controller(/*global_module=*/false);
  const std::vector<double> ests{0.0};
  const ModeDecision d = ctl.decide(0.0, ests, 1000.0);
  EXPECT_EQ(d.gamma, 0);
  EXPECT_EQ(d.reason, ModeReason::kDefaultSlow);
}

TEST(Intercluster, IsolatedClusterUsesCatchUpOnly) {
  const auto ctl = controller();
  const std::vector<double> no_neighbors;
  EXPECT_EQ(ctl.decide(0.0, no_neighbors, 100.0).reason,
            ModeReason::kMaxCatchUp);
  EXPECT_EQ(ctl.decide(0.0, no_neighbors, 1.0).reason,
            ModeReason::kDefaultSlow);
}

TEST(Intercluster, WeightedDecisionMirrorsUniform) {
  const auto ctl = controller();
  const std::vector<double> ests{6.0, -1.0};
  const std::vector<double> kappas{kKappa, kKappa};
  const std::vector<double> slacks{kSlack, kSlack};
  const ModeDecision uniform = ctl.decide(0.0, ests, 0.0);
  const ModeDecision weighted =
      ctl.decide_weighted(0.0, ests, kappas, slacks, 0.0);
  EXPECT_EQ(uniform.gamma, weighted.gamma);
  EXPECT_EQ(uniform.reason, weighted.reason);
}

TEST(Intercluster, WeightedHeavyEdgeSuppressesTrigger) {
  const auto ctl = controller();
  const std::vector<double> ests{6.0};  // FT on a unit edge
  const std::vector<double> heavy_kappas{3.0 * kKappa};
  const std::vector<double> slacks{kSlack};
  const ModeDecision d =
      ctl.decide_weighted(0.0, ests, heavy_kappas, slacks, 0.0);
  EXPECT_EQ(d.reason, ModeReason::kDefaultSlow);
}

TEST(Intercluster, RejectsNonExclusiveSlack) {
  // δ ≥ 2κ violates even the paper's (loose) Lemma 4.5 precondition.
  EXPECT_DEATH(InterclusterController(1.0, 2.0, kCGlobal, true),
               "precondition");
}

}  // namespace
}  // namespace ftgcs::core
