// The resolved physical topology as one reusable value: node-level
// adjacency plus per-edge message-delay bounds.
//
// Before this header, the adjacency and the channel's delay envelope were
// implicit in scenario construction — every consumer (Network wiring,
// partitioners, bound computations) re-derived them from an
// AugmentedTopology and a DelayModel pair. TopologyGraph extracts that
// one-source-of-truth: the shard partitioner reads it to find spatial
// cuts and the conservative lookahead (min over cut edges of the edge's
// MINIMUM delay — the paper's d − u > 0, which is exactly the safe-window
// width a conservative parallel simulator needs), the sharded backend
// sizes its windows from it, and future dynamic-topology scenarios can
// edit it in one place.
//
// Per-edge bounds: the uniform channel (the default) stores just the
// global [min_delay, max_delay] envelope; a heterogeneous DelayModel can
// publish per-directed-edge minima via `edge_min_delay` (parallel to
// `adjacency` positions), which the partitioner prefers when present.
#pragma once

#include <cstdint>
#include <vector>

#include "net/augmented.h"
#include "net/channel.h"

namespace ftgcs::exp {

struct TopologyGraph {
  int num_clusters = 0;
  int cluster_size = 0;  ///< k; node ids are cluster·k + index

  /// Node-level adjacency of the augmented graph (no self-loops; the
  /// network layer adds loopback on broadcast).
  std::vector<std::vector<int>> adjacency;
  /// Owning cluster per node id.
  std::vector<std::int32_t> cluster_of;

  /// Channel delay envelope: every message is in transit for a time in
  /// [min_delay, max_delay] (the paper's [d − u, d]).
  double min_delay = 0.0;
  double max_delay = 0.0;

  /// Optional per-directed-edge minimum delays, parallel to `adjacency`
  /// ([from][position]); empty when the channel is uniform.
  std::vector<std::vector<double>> edge_min_delay;

  int num_nodes() const { return static_cast<int>(adjacency.size()); }

  /// Minimum delay of directed edge (`from` → position `j` in its list).
  double edge_min(int from, std::size_t j) const {
    return edge_min_delay.empty()
               ? min_delay
               : edge_min_delay[static_cast<std::size_t>(from)][j];
  }
};

/// Builds the graph from the resolved augmented topology and the run's
/// delay model (uniform channels leave edge_min_delay empty).
TopologyGraph build_topology_graph(const net::AugmentedTopology& topo,
                                   const net::DelayModel& delays);

}  // namespace ftgcs::exp
