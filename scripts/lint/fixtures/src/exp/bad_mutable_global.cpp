// Seeded violations for the no-mutable-global rule (scope: all of src/),
// plus the bad-waiver case: a reason-less waiver is itself a finding and
// does NOT suppress the underlying violation.
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

int g_run_counter = 0;                          // EXPECT-LINT: no-mutable-global

namespace {
double g_last_skew = 0.0;                       // EXPECT-LINT: no-mutable-global
static std::uint64_t g_seed = 1;                // EXPECT-LINT: no-mutable-global
}  // namespace

thread_local int g_scratch_depth = 0;           // EXPECT-LINT: no-mutable-global

// Constants and types at namespace scope are fine.
constexpr int kMaxLevels = 16;
const double kEpsilon = 1e-9;
inline constexpr char kName[] = "fixture";
struct Config {
  int shards = 1;
};
using Row = std::vector<double>;

// Function-local statics are function scope, not namespace scope: the rule
// deliberately does not flag them (they still deserve scrutiny in review).
int cached_value() {
  static int cache = -1;
  if (cache < 0) cache = kMaxLevels;
  return cache;
}

// A reason-less waiver is invalid (bad-waiver fires on it, one line
// below this annotation) and does NOT suppress the underlying finding.
// EXPECT-LINT(+1): bad-waiver
// ftgcs-lint: allow(no-mutable-global)
long g_unjustified = 0;                         // EXPECT-LINT: no-mutable-global

// A justified waiver suppresses (e.g. an atomic diagnostics counter).
// ftgcs-lint: allow(no-mutable-global) fixture: proves waivers suppress
int g_waived_counter = 0;

}  // namespace fixture
