// E4 — the resilience boundary (§2 "Faults", n > 3f necessity):
// with ≤ f Byzantine members per cluster of k = 3f+1 every bound holds;
// at f+1 the trimmed agreement can be steered and guarantees degrade.
//
// A line of 3 clusters; attack strength sweeps across strategies; the
// actual number of faulty members per cluster sweeps 0..f+1; worst case
// over 3 seeds. The sweep is the registered e4_fault_tolerance_boundary
// scenario; this binary only runs it and explains the shape.
#include "bench_util.h"

#include <thread>

#include "exp/exp.h"

int main() {
  using namespace ftgcs;

  exp::register_builtin_scenarios();
  const exp::ScenarioSpec* spec =
      exp::Registry::instance().find("e4_fault_tolerance_boundary");

  const core::Params params = spec->params.build();
  bench::banner("E4",
                "fault-tolerance boundary (f tolerated, f+1 not; k = 3f+1)");
  std::printf("k=%d f=%d bound=%.4f kappa=%.4f\n\n", params.k, params.f,
              params.intra_cluster_skew_bound(), params.kappa);

  exp::SweepRunner runner(
      {static_cast<int>(std::thread::hardware_concurrency())});
  exp::TableSink().write(runner.run(*spec), std::cout);
  std::printf("\nshape check: rows with <= %d fault(s) stay within bounds "
              "with 0 violations; f+1-fault\nrows of the active attacks "
              "(two-faced / equivocator) break the bound or rack up "
              "violations.\n",
              params.f);
  return 0;
}
