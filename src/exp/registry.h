// Named scenario registry.
//
// Scenarios register by value under their `name`; the CLI, the ported
// experiment binaries and the tests all look experiments up here instead of
// hand-rolling setup code. register_builtin_scenarios() installs the
// paper-reproduction scenarios (E1, E4, E6, E9 families) and is idempotent.
#pragma once

#include <string>
#include <vector>

#include "exp/scenario.h"

namespace ftgcs::exp {

class Registry {
 public:
  static Registry& instance();

  /// Adds (or replaces, by name) a scenario. Empty names are rejected.
  void add(ScenarioSpec spec);

  /// Looks a scenario up by name; nullptr when absent.
  const ScenarioSpec* find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const { return scenarios_.size(); }

 private:
  Registry() = default;
  std::vector<ScenarioSpec> scenarios_;
};

/// Installs the built-in paper scenarios into Registry::instance().
/// Safe to call more than once.
void register_builtin_scenarios();

}  // namespace ftgcs::exp
