#include "sim/simulator.h"

#include <utility>

#include "support/assert.h"

namespace ftgcs::sim {

EventId Simulator::at(Time t, Callback fn) {
  FTGCS_EXPECTS(t >= now_);
  return queue_.schedule(t, std::move(fn));
}

EventId Simulator::after(Duration dt, Callback fn) {
  FTGCS_EXPECTS(dt >= 0.0);
  return queue_.schedule(now_ + dt, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  FTGCS_ASSERT(fired.at >= now_);
  now_ = fired.at;
  ++fired_;
  fired.fn();
  return true;
}

void Simulator::run_until(Time t_end) {
  FTGCS_EXPECTS(t_end >= now_);
  while (!queue_.empty() && queue_.next_time() <= t_end) {
    step();
  }
  now_ = t_end;
}

}  // namespace ftgcs::sim
