// Hardware and logical clock integration: exactness of the piecewise-
// linear closed forms, eq. (2) factor composition, inversion, and the
// Lemma B.4 rate envelope.
#include <gtest/gtest.h>

#include "clocks/hardware_clock.h"
#include "clocks/logical_clock.h"
#include "sim/rng.h"

namespace ftgcs::clocks {
namespace {

TEST(HardwareClock, IntegratesPiecewiseConstantRateExactly) {
  HardwareClock h(0.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(h.read(2.0), 2.0);
  h.set_rate(2.0, 1.5);
  EXPECT_DOUBLE_EQ(h.read(4.0), 2.0 + 1.5 * 2.0);
  h.set_rate(4.0, 1.0);
  EXPECT_DOUBLE_EQ(h.read(10.0), 5.0 + 6.0);
}

TEST(HardwareClock, WhenReachesInvertsRead) {
  HardwareClock h(0.0, 0.0, 1.25);
  const double target = 10.0;
  const sim::Time t = h.when_reaches(target, 0.0);
  EXPECT_DOUBLE_EQ(h.read(t), target);
}

TEST(HardwareClock, RateChangePreservesValue) {
  HardwareClock h(0.0, 0.0, 1.1);
  const double before = h.read(5.0);
  h.set_rate(5.0, 1.9);
  EXPECT_DOUBLE_EQ(h.read(5.0), before);
}

TEST(LogicalClock, ComposesAllThreeFactors) {
  // L rate = (1+ϕδ)(1+µγ)h per eq. (2).
  LogicalClock clock(/*phi=*/0.1, /*mu=*/0.05, /*h=*/1.2);
  // δ defaults to 1 (Algorithm 1 line 3), γ to 0.
  EXPECT_DOUBLE_EQ(clock.rate(), 1.1 * 1.0 * 1.2);
  clock.set_gamma(0.0, 1);
  EXPECT_DOUBLE_EQ(clock.rate(), 1.1 * 1.05 * 1.2);
  clock.set_delta(0.0, 0.0);
  EXPECT_DOUBLE_EQ(clock.rate(), 1.0 * 1.05 * 1.2);
  clock.set_hardware_rate(0.0, 1.0);
  EXPECT_DOUBLE_EQ(clock.rate(), 1.05);
}

TEST(LogicalClock, IntegratesThroughFactorChanges) {
  LogicalClock clock(0.5, 1.0, 1.0);
  // Segment 1: rate (1+0.5)(1)(1) = 1.5 for t in [0, 2].
  EXPECT_DOUBLE_EQ(clock.read(2.0), 3.0);
  clock.set_gamma(2.0, 1);  // rate 1.5*2 = 3.0
  EXPECT_DOUBLE_EQ(clock.read(3.0), 3.0 + 3.0);
  clock.set_delta(3.0, 2.0);  // rate (1+1)(2)(1) = 4.0
  EXPECT_DOUBLE_EQ(clock.read(4.0), 6.0 + 4.0);
}

TEST(LogicalClock, WhenReachesHandlesPastAndFuture) {
  LogicalClock clock(0.0, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(clock.when_reaches(10.0, 0.0), 5.0);
  // Already-reached targets fire immediately.
  EXPECT_DOUBLE_EQ(clock.when_reaches(-1.0, 3.0), 3.0);
}

TEST(LogicalClock, ObserverFiresOnEveryRateChange) {
  LogicalClock clock(0.1, 0.1, 1.0);
  int notifications = 0;
  clock.set_rate_observer([&](sim::Time) { ++notifications; });
  clock.set_gamma(1.0, 1);
  clock.set_delta(2.0, 0.5);
  clock.set_hardware_rate(3.0, 1.05);
  EXPECT_EQ(notifications, 3);
  // No-op changes do not notify.
  clock.set_gamma(4.0, 1);
  EXPECT_EQ(notifications, 3);
}

TEST(LogicalClock, JumpStepsValueAndNotifies) {
  LogicalClock clock(0.0, 0.0, 1.0);
  int notifications = 0;
  clock.set_rate_observer([&](sim::Time) { ++notifications; });
  EXPECT_DOUBLE_EQ(clock.read(5.0), 5.0);
  clock.jump(5.0, 2.0);
  EXPECT_EQ(notifications, 1);
  EXPECT_DOUBLE_EQ(clock.read(5.0), 2.0);
  EXPECT_DOUBLE_EQ(clock.read(6.0), 3.0);
}

TEST(LogicalClock, InitialValueOffsetSupported) {
  LogicalClock clock(0.1, 0.1, 1.0, 0.0, 42.0);
  EXPECT_DOUBLE_EQ(clock.read(0.0), 42.0);
}

// Property: for any admissible (δ, γ, h) the rate stays within the
// Lemma B.4 envelope [1, ϑ_max] = [1, (1+2ϕ/(1−ϕ))(1+µ)(1+ρ)].
TEST(LogicalClock, RateEnvelopeProperty) {
  const double phi = 0.2;
  const double mu = 0.05;
  const double rho = 1e-3;
  const double theta_max = (1.0 + 2.0 * phi / (1.0 - phi)) * (1.0 + mu) *
                           (1.0 + rho);
  sim::Rng rng(99);
  LogicalClock clock(phi, mu, 1.0);
  for (int i = 1; i <= 1000; ++i) {
    const sim::Time t = static_cast<sim::Time>(i);
    clock.set_delta(t, rng.uniform(0.0, 2.0 / (1.0 - phi)));
    clock.set_gamma(t, rng.chance(0.5) ? 1 : 0);
    clock.set_hardware_rate(t, rng.uniform(1.0, 1.0 + rho));
    EXPECT_GE(clock.rate(), 1.0);
    EXPECT_LE(clock.rate(), theta_max + 1e-12);
  }
}

}  // namespace
}  // namespace ftgcs::clocks
