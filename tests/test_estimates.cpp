// Passive cluster-clock estimates (Corollary 3.5): an adjacent observer's
// replica tracks the observed cluster within E, under drift and faults.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimates.h"
#include "harness.h"

namespace ftgcs::core {
namespace {

using testing::ClusterHarness;

Params test_params(int f = 1) {
  return Params::practical(1e-3, 1.0, 0.01, f);
}

double estimate_error(ClusterHarness& harness, int observer_index) {
  // Max |L̃ − L_v| over live members of the observed cluster.
  const double est =
      harness.observer(observer_index).clock().read(harness.sim().now());
  double worst = 0.0;
  for (int i = 0; i < harness.k(); ++i) {
    if (!harness.has_engine(i)) continue;
    worst = std::max(worst, std::abs(est - harness.engine(i).clock().read(
                                               harness.sim().now())));
  }
  return worst;
}

TEST(Estimates, ObserverTracksClusterWithinBound) {
  const Params params = test_params();
  ClusterHarness::Options options;
  options.observers = 2;
  ClusterHarness harness(params, std::move(options));
  // Worst-case constant drift: observers slowest, cluster spread.
  for (int i = 0; i < harness.k(); ++i) {
    harness.engine(i).set_hardware_rate(0.0,
                                        1.0 + params.rho * (i % 2));
  }
  harness.start();
  double worst = 0.0;
  for (int step = 1; step <= 60; ++step) {
    harness.run_rounds(0.5 * step);
    worst = std::max(worst, estimate_error(harness, 0));
    worst = std::max(worst, estimate_error(harness, 1));
  }
  // Corollary 3.5: |L̃_wC − L_v| ≤ E. Allow the ϑ_g·E envelope that
  // Corollary 3.2 gives for any two logical clocks of the same execution.
  EXPECT_LE(worst, params.theta_g * params.E);
}

TEST(Estimates, ObserverSurvivesSilentFaults) {
  const Params params = test_params(1);
  ClusterHarness::Options options;
  options.observers = 1;
  options.active = 3;  // one silent member out of k=4
  ClusterHarness harness(params, std::move(options));
  harness.start();
  double worst = 0.0;
  for (int step = 1; step <= 40; ++step) {
    harness.run_rounds(step);
    worst = std::max(worst, estimate_error(harness, 0));
  }
  EXPECT_LE(worst, params.theta_g * params.E);
  EXPECT_EQ(harness.observer(0).violations(), 0u);
}

TEST(Estimates, TwoObserversAgreeWithEachOther) {
  // Both replicas track the same cluster, so they agree within 2E.
  const Params params = test_params();
  ClusterHarness::Options options;
  options.observers = 2;
  options.seed = 11;
  ClusterHarness harness(params, std::move(options));
  harness.start();
  double worst = 0.0;
  for (int step = 1; step <= 40; ++step) {
    harness.run_rounds(step);
    const double a = harness.observer(0).clock().read(harness.sim().now());
    const double b = harness.observer(1).clock().read(harness.sim().now());
    worst = std::max(worst, std::abs(a - b));
  }
  EXPECT_LE(worst, 2.0 * params.theta_g * params.E);
}

TEST(EstimateBank, RoutesAndReadsPerCluster) {
  // Bank-level unit test on a 3-cluster line: node in middle cluster
  // observes both ends.
  const Params params = test_params();
  sim::Simulator sim;
  ClusterSyncConfig cfg;
  cfg.tau1 = params.tau1;
  cfg.tau2 = params.tau2;
  cfg.tau3 = params.tau3;
  cfg.phi = params.phi;
  cfg.mu = params.mu;
  cfg.f = params.f;
  cfg.k = params.k;
  cfg.active = false;
  cfg.d = params.d;
  cfg.U = params.U;
  sim::Rng rng(5);
  EstimateBank bank(sim, cfg, {0, 2}, 1.0, rng);
  bank.start();
  sim.run_until(0.5 * params.T);
  EXPECT_EQ(bank.clusters().size(), 2u);
  const auto values = bank.all_estimates(sim.now());
  EXPECT_EQ(values.size(), 2u);
  EXPECT_NEAR(values[0], bank.estimate(0, sim.now()), 1e-12);
  EXPECT_NEAR(values[1], bank.estimate(2, sim.now()), 1e-12);
  // Replicas progress on their own even without pulses (clamped).
  EXPECT_GT(values[0], 0.0);
}

TEST(EstimateBank, HardwareRateForwarding) {
  const Params params = test_params();
  sim::Simulator sim;
  ClusterSyncConfig cfg;
  cfg.tau1 = params.tau1;
  cfg.tau2 = params.tau2;
  cfg.tau3 = params.tau3;
  cfg.phi = params.phi;
  cfg.mu = params.mu;
  cfg.f = params.f;
  cfg.k = params.k;
  cfg.active = false;
  cfg.d = params.d;
  cfg.U = params.U;
  sim::Rng rng(6);
  EstimateBank bank(sim, cfg, {0}, 1.0, rng);
  bank.set_hardware_rate(0.0, 1.0 + params.rho);
  EXPECT_DOUBLE_EQ(bank.replica(0).clock().hardware_rate(),
                   1.0 + params.rho);
}

}  // namespace
}  // namespace ftgcs::core
