// Dynamic topology (paper App. A / [9, 10]): edges can be activated and
// deactivated at runtime; after activation the skew over the new edge
// stabilizes to the gradient bound within O(S/µ) time.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ftgcs_system.h"
#include "metrics/stabilization.h"
#include "metrics/skew_tracker.h"
#include "net/graph.h"

namespace ftgcs::core {
namespace {

Params params() { return Params::practical(1e-3, 1.0, 0.01, 1); }

TEST(DynamicEdges, InactiveEdgeIgnoredByTriggers) {
  // Two clusters offset by a large gap, edge inactive: neither cluster
  // reacts to the other (no fast/slow triggers fire), despite the huge
  // apparent skew.
  const Params p = params();
  FtGcsSystem::Config config;
  config.params = p;
  config.seed = 1;
  config.enable_global_module = false;  // isolate the trigger layer
  config.cluster_round_offsets = {0, 12};
  config.initially_inactive_edges = {{0, 1}};
  FtGcsSystem system(net::Graph::line(2), std::move(config));
  system.start();
  system.run_until(40.0 * p.T);

  std::uint64_t trigger_modes = 0;
  for (int id = 0; id < system.topology().num_nodes(); ++id) {
    const auto& counts = system.node(id).mode_counts();
    trigger_modes += counts[static_cast<std::size_t>(
        ModeReason::kFastTrigger)];
    trigger_modes += counts[static_cast<std::size_t>(
        ModeReason::kSlowTrigger)];
    EXPECT_FALSE(system.node(id).edge_active(1 - system.node(id).cluster()));
  }
  EXPECT_EQ(trigger_modes, 0u);
  // The gap persists (nothing drained it).
  const double gap =
      *system.cluster_clock(1) - *system.cluster_clock(0);
  EXPECT_GT(gap, 10.0 * p.T);
}

TEST(DynamicEdges, ActivationDrainsTheGap) {
  const Params p = params();
  FtGcsSystem::Config config;
  config.params = p;
  config.seed = 2;
  config.cluster_round_offsets = {0, 6};
  config.initially_inactive_edges = {{0, 1}};
  FtGcsSystem system(net::Graph::line(2), std::move(config));
  const sim::Time activate_at = 10.0 * p.T;
  system.schedule_edge_toggle(0, 1, true, activate_at);
  system.start();

  // Stabilization target: the level-1 band 2κ. (The fast trigger fires
  // while the gap exceeds 2κ−δ, so the residual settles just below that;
  // one κ is not reachable by a one-sided drain — the GCS guarantee for
  // an adjacent pair is the level band, not zero.)
  metrics::StabilizationTracker tracker(2.0 * p.kappa);
  for (int step = 1; step <= 400; ++step) {
    system.run_until(step * p.T);
    tracker.add(system.simulator().now(),
                std::abs(*system.cluster_clock(1) -
                         *system.cluster_clock(0)));
  }
  const auto delay = tracker.stabilization_delay(activate_at);
  ASSERT_TRUE(delay.has_value()) << "gap never stabilized below 2*kappa";
  // O(S/µ): S = 6T; generous constant.
  const double s_over_mu = 6.0 * p.T / p.mu;
  EXPECT_LE(*delay, 3.0 * s_over_mu);
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(DynamicEdges, StabilizationScalesWithInitialSkew) {
  // The App. A claim: stabilization in O(S/µ). Doubling S should roughly
  // double the stabilization delay (within a generous factor).
  const Params p = params();
  auto measure = [&](int gap_rounds) {
    FtGcsSystem::Config config;
    config.params = p;
    config.seed = 3;
    config.cluster_round_offsets = {0, gap_rounds};
    config.initially_inactive_edges = {{0, 1}};
    FtGcsSystem system(net::Graph::line(2), std::move(config));
    const sim::Time activate_at = 5.0 * p.T;
    system.schedule_edge_toggle(0, 1, true, activate_at);
    system.start();
    metrics::StabilizationTracker tracker(2.0 * p.kappa);
    for (int step = 1; step <= 1200; ++step) {
      system.run_until(step * p.T);
      tracker.add(system.simulator().now(),
                  std::abs(*system.cluster_clock(1) -
                           *system.cluster_clock(0)));
    }
    const auto delay = tracker.stabilization_delay(activate_at);
    EXPECT_TRUE(delay.has_value()) << "gap " << gap_rounds;
    return delay.value_or(1e18);
  };
  // Delays scale with the skew above the 2κ band: expect roughly
  // (S − 2κ)/µ̂. Gaps chosen so both sit well above the band.
  const double small = measure(12);
  const double large = measure(24);
  EXPECT_GT(large, 1.5 * small);
  EXPECT_LT(large, 6.0 * small);
}

TEST(DynamicEdges, DeactivationDecouplesClusters) {
  // Ring of 4; removing one edge leaves a line — the system must stay
  // within bounds on the remaining edges (crash-fault equivalence).
  const Params p = params();
  FtGcsSystem::Config config;
  config.params = p;
  config.seed = 4;
  FtGcsSystem system(net::Graph::ring(4), std::move(config));
  system.schedule_edge_toggle(0, 1, false, 10.0 * p.T);
  system.start();
  system.run_until(60.0 * p.T);
  // Remaining path 1-2-3-0 still bounded on its edges.
  const double e12 = std::abs(*system.cluster_clock(1) -
                              *system.cluster_clock(2));
  const double e23 = std::abs(*system.cluster_clock(2) -
                              *system.cluster_clock(3));
  const double e30 = std::abs(*system.cluster_clock(3) -
                              *system.cluster_clock(0));
  EXPECT_LE(e12, p.kappa);
  EXPECT_LE(e23, p.kappa);
  EXPECT_LE(e30, p.kappa);
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(DynamicEdges, ToggleRequiresExistingEdge) {
  const Params p = params();
  FtGcsSystem::Config config;
  config.params = p;
  config.seed = 5;
  FtGcsSystem system(net::Graph::line(3), std::move(config));
  EXPECT_DEATH(system.set_edge_active(0, 2, false), "precondition");
}

}  // namespace
}  // namespace ftgcs::core
