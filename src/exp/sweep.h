// Parallel sweep execution.
//
// SweepRunner expands a ScenarioSpec's axis grid × seed list into a flat
// task list (row-major over axes, seeds innermost), fans the tasks out over
// a std::thread pool, and collects the results back into grid order.
//
// Determinism: every task owns an independent Simulator (and RNG streams
// derived only from the task's seed), and each result lands in a pre-sized
// slot indexed by its task id — so the output is bit-identical at any
// thread count, which tests/test_exp_runner.cpp enforces.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "exp/run.h"
#include "exp/scenario.h"

namespace ftgcs::exp {

struct SweepResult {
  std::string scenario;
  /// Column names for the axis part of each row ("seed" included when rows
  /// are per-seed and more than one seed ran).
  std::vector<std::string> axis_names;
  /// Metric names the table sink prints (the scenario's `columns`, or every
  /// metric when the scenario did not choose).
  std::vector<std::string> columns;
  std::vector<RunResult> rows;  ///< grid order, independent of thread count

  /// Wall-clock measurements. Populated per row only when
  /// SweepOptions::timing is set (timing is machine-dependent, so it is
  /// kept out of the deterministic metric schema); totals are always
  /// filled. events_per_sec relates the row's simulated "events" metric to
  /// its wall time.
  struct RowTiming {
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
  };
  std::vector<RowTiming> timing;  ///< parallel to rows; empty if disabled
  double total_wall_ms = 0.0;     ///< sum of task wall times
  double total_events = 0.0;      ///< sum of simulated events over tasks

  /// Queue-tier diagnostics aggregated over tasks (maxima for occupancy
  /// figures, sums for event counters). Deterministic but
  /// engine-dependent, so they are reported in the `--timing` footer and
  /// never mixed into the metric tables.
  struct QueueTierTotals {
    double max_bucket_count = 0.0;
    double rung_spawns = 0.0;
    double max_overflow_peak = 0.0;
    double reseeds = 0.0;
    // Batch-channel run lengths, summed over tasks (and shards within a
    // sharded task): how much fired traffic bypassed per-event dispatch
    // (ordered_run_events) and how much of that additionally bypassed the
    // drain sort via the time-partitioned drain (unordered_events).
    double unordered_runs = 0.0;
    double unordered_events = 0.0;
    double ordered_run_events = 0.0;
    // Bytes-per-event split, summed over tasks: how many scheduled
    // deliveries took the 16 B narrow fast-path lane vs the 32 B wide
    // entry, and how many coalesced broadcast groups carried them.
    double narrow_events = 0.0;
    double wide_events = 0.0;
    double group_inserts = 0.0;
  };
  QueueTierTotals queue;

  /// Sharded-backend diagnostics aggregated over tasks (maxima for
  /// geometry/occupancy, sums for window counts) — `--timing` footer
  /// material, like the queue tiers. All zero when no task ran sharded.
  struct ShardTotals {
    double shards = 0.0;          ///< max effective shard count
    double max_cut_edges = 0.0;
    double min_cut_delay = 0.0;   ///< min over sharded tasks
    double windows = 0.0;         ///< sum
    double max_mailbox_peak = 0.0;
  };
  ShardTotals shard;

  /// Online invariant-monitor aggregates over tasks — maxima for observed
  /// skews, minima for bound margins (how close the worst task came to its
  /// bound; +inf when that invariant was disabled in every monitored
  /// task), and the FIRST violating task's flag verbatim. `--timing`
  /// footer material, like the diagnostics above.
  struct MonitorTotals {
    double rows = 0.0;        ///< tasks that ran with monitors on
    double probes = 0.0;      ///< sum
    double violations = 0.0;  ///< sum of probe × invariant exceedances
    double max_local_skew = 0.0;
    double max_global_skew = 0.0;
    double max_intra = 0.0;
    double max_m_lag = 0.0;
    double min_local_margin = std::numeric_limits<double>::infinity();
    double min_global_margin = std::numeric_limits<double>::infinity();
    double min_intra_margin = std::numeric_limits<double>::infinity();
    bool has_violation = false;
    std::size_t first_task = 0;  ///< task index of `first`
    trace::Violation first;      ///< valid iff has_violation
  };
  MonitorTotals monitor;

  /// Trace-capture totals over tasks (all zero when tracing was off).
  struct TraceTotals {
    double files = 0.0;
    double records = 0.0;
    double bytes = 0.0;
  };
  TraceTotals trace;

  /// Deterministic metrics-series totals over tasks (all zero when
  /// `--metrics` was off). Deterministic themselves: probe/byte counts
  /// are identical across engines and shard counts.
  struct SeriesTotals {
    double files = 0.0;
    double probes = 0.0;
    double bytes = 0.0;
  };
  SeriesTotals series;

  /// Phase-profiler totals over tasks (wall clock — footer material).
  /// `shards`/`max_imbalance` are maxima, the phase times are sums.
  struct ProfileTotals {
    double rows = 0.0;    ///< tasks that ran with the profiler on
    double shards = 0.0;  ///< max bound shard count (0 = all unsharded)
    double merge_ms = 0.0;
    double run_ms = 0.0;
    double wait_ms = 0.0;
    double max_imbalance = 0.0;
  };
  ProfileTotals profile;
};

struct SweepOptions {
  int threads = 1;     ///< worker threads; clamped to [1, #tasks]
  bool timing = false; ///< emit per-row wall_ms / events_per_sec columns
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  /// Runs the full grid of `spec` and aggregates per its SeedAggregation.
  SweepResult run(const ScenarioSpec& spec) const;

 private:
  SweepOptions options_;
};

}  // namespace ftgcs::exp
