// E12 — the contraction that everything rests on: e(r+1) ≤ α·e(r) + β
// (Corollary B.13). We inject a transient clock perturbation into one
// member of a cluster and trace the per-round pulse diameter ‖p(r)‖ as it
// contracts back to steady state, estimating the empirical contraction
// factor and comparing it with the analytic α of Claim B.15 (which is a
// worst-case over delay adversaries — measured contraction must be at
// least as fast).
#include "bench_util.h"

#include <cmath>

#include "metrics/trace.h"

namespace {

using namespace ftgcs;

struct Contraction {
  std::vector<double> diameters;  ///< ‖p(r)‖ for rounds after injection
  double empirical_ratio = 0.0;   ///< geometric decay factor
};

Contraction run(const core::Params& params, double perturbation,
                std::unique_ptr<net::DelayModel> delays,
                std::uint64_t seed) {
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  config.delay_model = std::move(delays);
  core::FtGcsSystem system(net::Graph::line(1), std::move(config));
  const int victim = system.topology().node(0, 0);
  const int inject_round = 10;
  system.node(victim).inject_transient_fault_at(inject_round * params.T,
                                                perturbation);

  metrics::PulseDiameterTrace trace(params.k);
  for (int member : system.topology().members(0)) {
    auto& engine = system.node(member).engine();
    auto previous = engine.on_pulse;
    engine.on_pulse = [&trace, previous](int round, sim::Time now) {
      trace.record_pulse(round, now);
      if (previous) previous(round, now);
    };
  }
  system.start();
  system.run_until((inject_round + 14) * params.T);

  // Locate the spike (the round in which the perturbation hit — rounds
  // run faster than Newtonian time, so we detect rather than compute it)
  // and take the series from there.
  Contraction out;
  const auto complete = trace.complete_rounds();
  std::size_t spike = 0;
  for (std::size_t i = 1; i < complete.size(); ++i) {
    if (complete[i].second > complete[spike].second) spike = i;
  }
  for (std::size_t i = spike; i < complete.size() && out.diameters.size() < 8;
       ++i) {
    out.diameters.push_back(complete[i].second);
  }
  if (out.diameters.size() >= 2) {
    out.empirical_ratio = out.diameters[1] / out.diameters[0];
  }
  return out;
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  banner("E12", "round contraction e(r+1) = alpha*e(r) + beta "
                "(Cor. B.13 / Claim B.15)");
  std::printf("analytic worst-case alpha = %.4f (general recurrence), "
              "steady E = %.4f\n\n",
              params.rec_general.alpha, params.E);

  metrics::Table table({"delay adversary", "perturbation",
                        "|p| from spike (per round)",
                        "one-round ratio", "<= alpha"});
  const double perturbation = 0.8 * params.phi * params.tau3;
  for (int adversary = 0; adversary < 3; ++adversary) {
    std::unique_ptr<net::DelayModel> delays;
    const char* name = "";
    switch (adversary) {
      case 0:
        delays = std::make_unique<net::UniformDelay>(params.d, params.U);
        name = "uniform";
        break;
      case 1:
        delays = std::make_unique<net::TwoPointDelay>(params.d, params.U);
        name = "two-point";
        break;
      case 2:
        delays = std::make_unique<net::DirectionalDelay>(params.d, params.U);
        name = "directional";
        break;
    }
    const Contraction result =
        run(params, perturbation, std::move(delays), 21);
    std::string series;
    for (std::size_t i = 0; i < std::min<std::size_t>(6,
                                                      result.diameters.size());
         ++i) {
      if (i > 0) series += " ";
      series += metrics::Table::num(result.diameters[i], 3);
    }
    table.add_row({name, metrics::Table::num(perturbation, 4), series,
                   metrics::Table::num(result.empirical_ratio, 3),
                   result.empirical_ratio <= params.rec_general.alpha
                       ? "yes"
                       : "NO"});
  }
  table.print(std::cout);
  std::printf("\nshape check: the pulse diameter collapses after the fault; "
              "the measured one-round\ncontraction is far below the "
              "worst-case alpha for every delay adversary (a single\n"
              "f-trimmable outlier is absorbed essentially in one "
              "correction step).\n");
  return 0;
}
