// Ground-truth skew measurement.
//
// All quantities the paper bounds are computed here from system snapshots:
//
//   node-local skew     max |L_v − L_w| over augmented edges {v,w} ⊆ V\F
//   cluster-local skew  max |L_B − L_C| over cluster edges (B,C) ∈ E
//   intra-cluster skew  max over C of max |L_v − L_w|, v,w ∈ C\F
//   node/cluster global max over all correct pairs / all cluster pairs
//
// SkewProbe samples a system periodically via simulator events and keeps
// both the full time series and running maxima over a steady-state window.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/ftgcs_system.h"
#include "metrics/stats.h"
#include "net/augmented.h"
#include "sim/simulator.h"

namespace ftgcs::metrics {

struct SkewSample {
  sim::Time at = 0.0;
  double node_local = 0.0;
  double cluster_local = 0.0;
  double intra_cluster = 0.0;
  double node_global = 0.0;
  double cluster_global = 0.0;
};

/// Computes one sample from columnar node-state arrays + topology. This is
/// the allocation-light hot path: probes refill one SystemColumns buffer
/// and scan the arrays directly.
SkewSample measure_skews(const core::SystemColumns& columns,
                         const net::AugmentedTopology& topo);

/// Convenience overload over a row-of-structs snapshot (tests, examples).
SkewSample measure_skews(const core::SystemSnapshot& snapshot,
                         const net::AugmentedTopology& topo);

class SkewProbe final : public sim::EventSink {
 public:
  /// Samples `system` every `interval` (Newtonian) once started; samples
  /// taken at or after `steady_after` also feed the steady-state maxima.
  SkewProbe(core::FtGcsSystem& system, sim::Duration interval,
            sim::Time steady_after);

  /// Schedules the periodic sampling (call before running).
  void start();

  const std::vector<SkewSample>& samples() const { return samples_; }

  /// Maxima over samples with at >= steady_after.
  const SkewSample& steady_max() const { return steady_max_; }
  /// Maxima over all samples.
  const SkewSample& overall_max() const { return overall_max_; }

  bool has_steady_samples() const { return steady_samples_ > 0; }

  /// EventSink: the periodic kProbe tick.
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;

 private:
  void sample_once();

  core::FtGcsSystem& system_;
  sim::Duration interval_;
  sim::Time steady_after_;
  sim::SinkId self_ = sim::kInvalidSink;
  core::SystemColumns columns_;  ///< reused; probing allocates nothing
  std::vector<SkewSample> samples_;
  SkewSample steady_max_;
  SkewSample overall_max_;
  std::size_t steady_samples_ = 0;
};

}  // namespace ftgcs::metrics
