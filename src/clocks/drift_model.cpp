#include "clocks/drift_model.h"

#include <cmath>
#include <numbers>

#include "support/assert.h"

namespace ftgcs::clocks {

void ConstantDrift::install(sim::Simulator& simulator,
                            std::vector<RateSink> sinks) {
  const sim::Time now = simulator.now();
  const std::size_t n = sinks.size();
  for (std::size_t i = 0; i < n; ++i) {
    double rate;
    if (spread_) {
      rate = n > 1 ? 1.0 + rho_ * static_cast<double>(i) /
                               static_cast<double>(n - 1)
                   : 1.0 + rho_ / 2.0;
    } else {
      rate = rng_.uniform(1.0, 1.0 + rho_);
    }
    sinks[i](now, rate);
  }
}

void RandomWalkDrift::install(sim::Simulator& simulator,
                              std::vector<RateSink> sinks) {
  FTGCS_EXPECTS(interval_ > 0.0);
  sim_ = &simulator;
  self_ = simulator.register_sink(this);
  sinks_ = std::move(sinks);
  rates_.resize(sinks_.size());
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    rates_[i] = rng_.uniform(1.0, 1.0 + rho_);
    sinks_[i](now, rates_[i]);
  }
  simulator.post_after(interval_, sim::EventKind::kDrift, self_, {});
}

void RandomWalkDrift::on_event(sim::EventKind kind, const sim::EventPayload&,
                               sim::Time /*now*/) {
  FTGCS_ASSERT(kind == sim::EventKind::kDrift);
  ++ticks_;
  tick(*sim_);
}

void RandomWalkDrift::tick(sim::Simulator& simulator) {
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    double r = rates_[i] + rng_.uniform(-step_, step_);
    // Reflect into the envelope [1, 1+rho].
    if (r < 1.0) r = 2.0 - r;
    if (r > 1.0 + rho_) r = 2.0 * (1.0 + rho_) - r;
    if (r < 1.0) r = 1.0;  // pathological step size > rho
    rates_[i] = r;
    sinks_[i](now, r);
  }
  simulator.post_after(interval_, sim::EventKind::kDrift, self_, {});
}

void SinusoidalDrift::install(sim::Simulator& simulator,
                              std::vector<RateSink> sinks) {
  FTGCS_EXPECTS(period_ > 0.0 && sample_ > 0.0);
  sim_ = &simulator;
  self_ = simulator.register_sink(this);
  sinks_ = std::move(sinks);
  phases_.resize(sinks_.size());
  for (auto& phase : phases_) phase = rng_.next_double();
  tick(simulator);
}

void SinusoidalDrift::on_event(sim::EventKind kind, const sim::EventPayload&,
                               sim::Time /*now*/) {
  FTGCS_ASSERT(kind == sim::EventKind::kDrift);
  ++ticks_;
  tick(*sim_);
}

void SinusoidalDrift::tick(sim::Simulator& simulator) {
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    const double arg =
        2.0 * std::numbers::pi * (now / period_ + phases_[i]);
    const double rate = 1.0 + rho_ / 2.0 + (rho_ / 2.0) * std::sin(arg);
    sinks_[i](now, rate);
  }
  simulator.post_after(sample_, sim::EventKind::kDrift, self_, {});
}

void SpatialSplitDrift::install(sim::Simulator& simulator,
                                std::vector<RateSink> sinks) {
  FTGCS_EXPECTS(sinks.size() == group_.size());
  sim_ = &simulator;
  self_ = simulator.register_sink(this);
  sinks_ = std::move(sinks);
  apply(simulator, /*flipped=*/false);
}

void SpatialSplitDrift::on_event(sim::EventKind kind,
                                 const sim::EventPayload& payload,
                                 sim::Time /*now*/) {
  FTGCS_ASSERT(kind == sim::EventKind::kDrift);
  ++ticks_;
  apply(*sim_, payload.a != 0);
}

void SpatialSplitDrift::apply(sim::Simulator& simulator, bool flipped) {
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    const bool first_side = group_[i] < boundary_;
    const bool fast = first_side != flipped;
    sinks_[i](now, fast ? 1.0 + rho_ : 1.0);
  }
  if (flip_every_ > 0.0) {
    sim::EventPayload payload;
    payload.a = flipped ? 0 : 1;  // the *next* application's side
    simulator.post_after(flip_every_, sim::EventKind::kDrift, self_, payload);
  }
}

void ScheduledDrift::install(sim::Simulator& simulator,
                             std::vector<RateSink> sinks) {
  FTGCS_EXPECTS(initial_.size() == sinks.size());
  self_ = simulator.register_sink(this);
  sinks_ = std::move(sinks);
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    sinks_[i](now, initial_[i]);
  }
  for (std::size_t c = 0; c < script_.size(); ++c) {
    FTGCS_EXPECTS(script_[c].node < sinks_.size());
    sim::EventPayload payload;
    payload.a = static_cast<std::int32_t>(c);
    simulator.post_at(script_[c].at, sim::EventKind::kDrift, self_, payload);
  }
}

void ScheduledDrift::on_event(sim::EventKind kind,
                              const sim::EventPayload& payload,
                              sim::Time /*now*/) {
  FTGCS_ASSERT(kind == sim::EventKind::kDrift);
  ++ticks_;
  const Change& change = script_[static_cast<std::size_t>(payload.a)];
  sinks_[change.node](change.at, change.rate);
}

}  // namespace ftgcs::clocks
