#include "core/intercluster.h"

#include "support/assert.h"

namespace ftgcs::core {

InterclusterController::InterclusterController(double kappa, double slack,
                                               double c_global,
                                               bool use_global_module)
    : kappa_(kappa),
      slack_(slack),
      c_global_(c_global),
      use_global_module_(use_global_module) {
  FTGCS_EXPECTS(kappa > 0.0);
  FTGCS_EXPECTS(slack >= 0.0);
  // Lemma 4.5: triggers are mutually exclusive only for δ < 2κ.
  FTGCS_EXPECTS(slack < 2.0 * kappa);
}

ModeDecision InterclusterController::decide_weighted(
    double self, std::span<const double> estimates,
    std::span<const double> kappas, std::span<const double> slacks,
    double max_estimate) const {
  if (estimates.empty()) {
    if (use_global_module_ && self <= max_estimate - c_global_ * slack_) {
      return {1, ModeReason::kMaxCatchUp};
    }
    return {0, ModeReason::kDefaultSlow};
  }
  const WeightedTriggerView view{self, estimates, kappas, slacks};
  if (weighted_fast_trigger(view)) {
    return {1, ModeReason::kFastTrigger};
  }
  if (weighted_slow_trigger(view)) {
    return {0, ModeReason::kSlowTrigger};
  }
  if (use_global_module_ && self <= max_estimate - c_global_ * slack_) {
    return {1, ModeReason::kMaxCatchUp};
  }
  return {0, ModeReason::kDefaultSlow};
}

ModeDecision InterclusterController::decide(
    double self, std::span<const double> estimates,
    double max_estimate) const {
  if (estimates.empty()) {
    // Isolated cluster: no gradient constraints; stay slow unless the
    // global module demands catch-up.
    if (use_global_module_ &&
        self <= max_estimate - c_global_ * slack_) {
      return {1, ModeReason::kMaxCatchUp};
    }
    return {0, ModeReason::kDefaultSlow};
  }

  const TriggerView view{self, estimates};
  if (fast_trigger(view, kappa_, slack_)) {
    return {1, ModeReason::kFastTrigger};
  }
  if (slow_trigger(view, kappa_, slack_)) {
    return {0, ModeReason::kSlowTrigger};
  }
  if (use_global_module_ && self <= max_estimate - c_global_ * slack_) {
    return {1, ModeReason::kMaxCatchUp};
  }
  return {0, ModeReason::kDefaultSlow};
}

}  // namespace ftgcs::core
