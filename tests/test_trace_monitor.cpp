// Online invariant monitors vs offline ground truth.
//
// The monitor's skew scan is an independent reimplementation (edge-by-edge
// over the node adjacency) of metrics::measure_skews' cluster-extreme
// reduction; over the augmented graph (intra-cluster cliques + complete
// bipartite bundles) the two are provably equal. These tests check that
// equality AT EVERY PROBE on real runs — ring and torus, both queue
// backends, single-simulator and sharded — with crash-stop and Byzantine
// faults active so the crashed-exclusion path is exercised for real, plus
// synthetic-column pins for exclusion and first-violation cursor capture.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "byz/fault_plan.h"
#include "core/ftgcs_system.h"
#include "exp/exp.h"
#include "exp/topology_graph.h"
#include "metrics/skew_tracker.h"
#include "net/channel.h"
#include "par/sharded_system.h"
#include "trace/monitor.h"

namespace ftgcs {
namespace {

using exp::AxisValue;
using exp::ScenarioSpec;
using trace::InvariantMonitor;
using trace::MonitorBounds;
using trace::MonitorCursor;

/// Loose bounds so no real run violates; these tests pin measurement, not
/// the paper's envelopes (run.cpp derives those).
MonitorBounds loose_bounds() {
  MonitorBounds bounds;
  bounds.local_skew = 1e9;
  bounds.global_skew = 1e9;
  bounds.intra_cluster = 1e9;
  return bounds;
}

/// Drives `system` probe by probe and checks, at every probe, that a fresh
/// monitor's per-probe maxima equal measure_skews' node-level quantities
/// exactly, and that the cumulative monitor tracks the running maxima.
template <typename System>
void expect_monitor_matches_offline(System& system,
                                    const net::AugmentedTopology& topo,
                                    const core::Params& params,
                                    const std::vector<int>& crash_ids,
                                    const std::string& label) {
  const net::UniformDelay delays(params.d, params.U);
  const exp::TopologyGraph graph = exp::build_topology_graph(topo, delays);

  InvariantMonitor cumulative(graph, loose_bounds());
  metrics::SkewSample running;

  system.start();
  for (int id : crash_ids) system.node(id).crash_at(4.25 * params.T);

  core::SystemColumns columns;
  for (int probe = 1; probe <= 24; ++probe) {
    const sim::Time t = probe * 0.5 * params.T;
    system.run_until(t);
    system.snapshot_columns(columns);
    const metrics::SkewSample offline = metrics::measure_skews(columns, topo);

    MonitorCursor cursor;
    cursor.at = t;
    InvariantMonitor fresh(graph, loose_bounds());
    fresh.observe(columns, cursor);
    EXPECT_EQ(fresh.stats().max_local_skew, offline.node_local)
        << label << " probe " << probe;
    EXPECT_EQ(fresh.stats().max_global_skew, offline.node_global)
        << label << " probe " << probe;
    EXPECT_EQ(fresh.stats().max_intra_cluster, offline.intra_cluster)
        << label << " probe " << probe;

    cumulative.observe(columns, cursor);
    running.node_local = std::max(running.node_local, offline.node_local);
    running.node_global = std::max(running.node_global, offline.node_global);
    running.intra_cluster =
        std::max(running.intra_cluster, offline.intra_cluster);
    EXPECT_EQ(cumulative.stats().max_local_skew, running.node_local)
        << label << " probe " << probe;
    EXPECT_EQ(cumulative.stats().max_global_skew, running.node_global)
        << label << " probe " << probe;
    EXPECT_EQ(cumulative.stats().max_intra_cluster, running.intra_cluster)
        << label << " probe " << probe;
  }
  EXPECT_EQ(cumulative.stats().probes, 24u) << label;
  EXPECT_EQ(cumulative.stats().violations, 0u) << label;
  EXPECT_FALSE(cumulative.stats().has_violation) << label;
}

/// One correct member per listed cluster (crash victims).
std::vector<int> pick_crash_ids(const core::FtGcsSystem& system,
                                const net::AugmentedTopology& topo,
                                const std::vector<int>& clusters) {
  std::vector<int> ids;
  for (int cluster : clusters) {
    for (int member : topo.members(cluster)) {
      if (system.is_correct(member)) {
        ids.push_back(member);
        break;
      }
    }
  }
  return ids;
}

void run_property(const net::Graph& graph, const std::vector<int>& crashes,
                  sim::QueueBackend engine, int shards,
                  const std::string& label) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  const net::AugmentedTopology topo(graph, params.k);
  const byz::FaultPlan plan = byz::FaultPlan::uniform(
      topo, 1, byz::StrategyKind::kTwoFaced, 3.0 * params.E, /*seed=*/77);

  if (shards == 1) {
    core::FtGcsSystem::Config config;
    config.params = params;
    config.seed = 5;
    config.fault_plan = plan;
    config.engine = engine;
    core::FtGcsSystem system(graph, std::move(config));
    expect_monitor_matches_offline(
        system, topo, params, pick_crash_ids(system, topo, crashes), label);
  } else {
    par::ShardedFtGcsSystem::Config config;
    config.params = params;
    config.seed = 5;
    config.fault_plan = plan;
    config.engine = engine;
    config.shards = shards;
    par::ShardedFtGcsSystem system(graph, std::move(config));
    // Victim selection needs a correctness oracle; build a twin single
    // system just to pick ids (fault plans are seed-deterministic).
    core::FtGcsSystem::Config oracle_config;
    oracle_config.params = params;
    oracle_config.seed = 5;
    oracle_config.fault_plan = plan;
    core::FtGcsSystem oracle(graph, std::move(oracle_config));
    expect_monitor_matches_offline(
        system, topo, params, pick_crash_ids(oracle, topo, crashes), label);
  }
}

TEST(TraceMonitor, MatchesOfflineSkewsOnRingEveryProbe) {
  const net::Graph graph = net::Graph::ring(8);
  run_property(graph, {1, 6}, sim::QueueBackend::kLadder, 1, "ring/ladder/s1");
  run_property(graph, {1, 6}, sim::QueueBackend::kHeap, 1, "ring/heap/s1");
  run_property(graph, {1, 6}, sim::QueueBackend::kLadder, 2, "ring/ladder/s2");
  run_property(graph, {1, 6}, sim::QueueBackend::kHeap, 2, "ring/heap/s2");
}

TEST(TraceMonitor, MatchesOfflineSkewsOnTorusEveryProbe) {
  const net::Graph graph = net::Graph::torus(4, 4);
  run_property(graph, {0, 10}, sim::QueueBackend::kLadder, 1,
               "torus/ladder/s1");
  run_property(graph, {0, 10}, sim::QueueBackend::kLadder, 2,
               "torus/ladder/s2");
}

/// Hand-built two-cluster graph (k = 2, clusters {0,1} and {2,3}, full
/// bipartite bundle) for synthetic-column pins.
exp::TopologyGraph tiny_graph() {
  exp::TopologyGraph graph;
  graph.num_clusters = 2;
  graph.cluster_size = 2;
  graph.adjacency = {{1, 2, 3}, {0, 2, 3}, {3, 0, 1}, {2, 0, 1}};
  graph.cluster_of = {0, 0, 1, 1};
  return graph;
}

core::SystemColumns tiny_columns(std::vector<double> logical,
                                 std::vector<std::uint8_t> correct) {
  core::SystemColumns columns;
  columns.at = 1.0;
  columns.logical = std::move(logical);
  columns.correct = std::move(correct);
  columns.gamma = {0, 0, 0, 0};
  return columns;
}

TEST(TraceMonitor, CrashedNodesAreExcludedFromEveryAggregate) {
  InvariantMonitor monitor(tiny_graph(), loose_bounds());
  // Node 1 crashed with a wildly wrong clock: with correct = 0 it must not
  // touch any aggregate...
  monitor.observe(tiny_columns({10.0, 5000.0, 10.5, 11.0}, {1, 0, 1, 1}),
                  MonitorCursor{});
  EXPECT_EQ(monitor.stats().max_local_skew, 1.0);    // 10.0 vs 11.0
  EXPECT_EQ(monitor.stats().max_global_skew, 1.0);   // [10.0, 11.0]
  EXPECT_EQ(monitor.stats().max_intra_cluster, 0.5);  // 10.5 vs 11.0
  EXPECT_EQ(monitor.stats().violations, 0u);

  // ...whereas the same columns with node 1 marked correct blow all three
  // aggregates up — proving the exclusion above did the work.
  InvariantMonitor control(tiny_graph(), loose_bounds());
  control.observe(tiny_columns({10.0, 5000.0, 10.5, 11.0}, {1, 1, 1, 1}),
                  MonitorCursor{});
  EXPECT_EQ(control.stats().max_local_skew, 4990.0);
  EXPECT_EQ(control.stats().max_global_skew, 4990.0);
  EXPECT_EQ(control.stats().max_intra_cluster, 4990.0);
}

TEST(TraceMonitor, FirstViolationCapturesReplayCursor) {
  MonitorBounds bounds;
  bounds.local_skew = 0.25;
  bounds.global_skew = 1e9;
  bounds.intra_cluster = 0.25;
  InvariantMonitor monitor(tiny_graph(), bounds);

  MonitorCursor clean;
  clean.at = 1.0;
  monitor.observe(tiny_columns({10.0, 10.1, 10.0, 10.1}, {1, 1, 1, 1}),
                  clean);
  EXPECT_FALSE(monitor.stats().has_violation);

  MonitorCursor bad;
  bad.at = 2.0;
  bad.events = 123;
  bad.trace_records = 45;
  bad.trace_offset = 6789;
  monitor.observe(tiny_columns({10.0, 10.4, 10.0, 10.1}, {1, 1, 1, 1}), bad);

  // 0.4 exceeds both the local and the intra bound at this probe.
  EXPECT_EQ(monitor.stats().violations, 2u);
  ASSERT_TRUE(monitor.stats().has_violation);
  const trace::Violation& first = monitor.stats().first;
  EXPECT_STREQ(first.invariant, "local_skew");
  EXPECT_EQ(first.value, 10.4 - 10.0);  // same float op the scan performs
  EXPECT_EQ(first.bound, 0.25);
  EXPECT_EQ(first.cursor.at, 2.0);
  EXPECT_EQ(first.cursor.events, 123u);
  EXPECT_EQ(first.cursor.trace_records, 45u);
  EXPECT_EQ(first.cursor.trace_offset, 6789u);

  // Later violations do not overwrite the first cursor.
  MonitorCursor later;
  later.at = 3.0;
  monitor.observe(tiny_columns({10.0, 10.9, 10.0, 10.1}, {1, 1, 1, 1}),
                  later);
  EXPECT_EQ(monitor.stats().first.cursor.at, 2.0);
  EXPECT_EQ(monitor.stats().violations, 4u);

  // Margins: bound − running max; disabled invariants report +inf.
  EXPECT_EQ(monitor.local_margin(), 0.25 - (10.9 - 10.0));
  EXPECT_TRUE(std::isinf(monitor.m_lag_margin()));
}

TEST(TraceMonitor, RunPointReportsMatchMetricsAndAgreeAcrossBackends) {
  exp::register_builtin_scenarios();
  ScenarioSpec spec = *exp::Registry::instance().find("large_ring");
  spec.axes = {{"clusters", {AxisValue::of(64)}}};
  apply_axis(spec, "clusters", 64.0);

  const auto run_with = [&](int shards, sim::QueueBackend engine) {
    ScenarioSpec s = spec;
    s.shards = shards;
    s.engine = engine;
    return run_point(s, 1);
  };

  const exp::RunResult base = run_with(1, sim::QueueBackend::kLadder);
  ASSERT_TRUE(base.monitor.enabled);
  EXPECT_GT(base.monitor.stats.probes, 0u);
  // The monitor's running node-level maxima must equal the offline metric
  // schema's — same snapshots, independent reductions.
  EXPECT_EQ(base.monitor.stats.max_local_skew, base.metric("max_node_local"));
  EXPECT_EQ(base.monitor.stats.max_intra_cluster, base.metric("max_intra"));
  EXPECT_GE(base.monitor.stats.max_global_skew, base.metric("max_global"));
  EXPECT_EQ(base.monitor.stats.violations, 0u);
  EXPECT_GT(base.monitor.bounds.local_skew, 0.0);

  for (auto [shards, engine] :
       {std::pair<int, sim::QueueBackend>{2, sim::QueueBackend::kLadder},
        std::pair<int, sim::QueueBackend>{2, sim::QueueBackend::kHeap}}) {
    const exp::RunResult other = run_with(shards, engine);
    ASSERT_TRUE(other.monitor.enabled);
    EXPECT_EQ(other.monitor.stats.probes, base.monitor.stats.probes);
    EXPECT_EQ(other.monitor.stats.violations, base.monitor.stats.violations);
    EXPECT_EQ(other.monitor.stats.max_local_skew,
              base.monitor.stats.max_local_skew);
    EXPECT_EQ(other.monitor.stats.max_global_skew,
              base.monitor.stats.max_global_skew);
    EXPECT_EQ(other.monitor.stats.max_intra_cluster,
              base.monitor.stats.max_intra_cluster);
  }

  ScenarioSpec off = spec;
  off.monitors = false;
  const exp::RunResult no_monitor = run_point(off, 1);
  EXPECT_FALSE(no_monitor.monitor.enabled);
  EXPECT_EQ(no_monitor.monitor.stats.probes, 0u);
}

}  // namespace
}  // namespace ftgcs
