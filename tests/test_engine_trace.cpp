// Golden-trace pin for the typed event engine.
//
// The engine swap (typed slot-pooled queue, batched broadcast, in-place
// timer reschedule) is required to preserve equal-time FIFO ordering and
// per-stream RNG draw order EXACTLY. This test pins the E6 global-skew
// scenario (diameter 2, seed 5) to metric values recorded from the
// pre-swap std::function/unordered_map engine: the event and message
// counts fingerprint the whole schedule (any ordering or RNG change shifts
// them), and the skew metrics depend on every delivery timestamp, so a
// match here means the old and new engines execute the same trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/exp.h"

namespace ftgcs::exp {
namespace {

std::string sig(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

TEST(EngineTrace, E6GlobalSkewDrainMatchesPreSwapEngine) {
  register_builtin_scenarios();
  const ScenarioSpec* registered =
      Registry::instance().find("e6_global_skew_drain");
  ASSERT_NE(registered, nullptr);

  // The registered default engine is the ladder backend, so this pin also
  // proves the calendar front-end replays the seed engine's trace exactly.
  ScenarioSpec spec = *registered;
  apply_axis(spec, "diameter", 2.0);
  const RunResult result = run_point(spec, /*seed=*/5);

  // Golden values measured on the seed engine (commit 378de92) with the
  // identical spec. Do not update these casually: a diff means the event
  // schedule is no longer bit-identical to the original semantics.
  EXPECT_EQ(result.metric("events"), 1342939.0);
  EXPECT_EQ(result.metric("messages"), 1110128.0);
  EXPECT_EQ(sig(result.metric("S_init")), "129.365285736");
  EXPECT_EQ(sig(result.metric("max_local")), "64.8388502118");
  EXPECT_EQ(sig(result.metric("max_global")), "129.324824038");
  EXPECT_EQ(sig(result.metric("final_global")), "22.0105825273");
  EXPECT_EQ(sig(result.metric("max_intra")), "0.12785914546");
  EXPECT_EQ(result.metric("violations"), 0.0);
  EXPECT_EQ(result.metric("in_global_band"), 1.0);
}

// Large-ring pin at production scale (1000 clusters, 4000 nodes): run the
// registered scenario under BOTH engine backends and require (a) every
// metric bit-identical between them and (b) the key figures equal to the
// golden values recorded from the heap engine (which executes the same
// trace as the PR 2 engine). Any divergence in pop order, RNG draw order,
// or delivery timestamps shifts the event/message counts or the skews.
TEST(EngineTrace, LargeRingBitIdenticalUnderHeapAndLadder) {
  register_builtin_scenarios();
  const ScenarioSpec* registered = Registry::instance().find("large_ring");
  ASSERT_NE(registered, nullptr);

  ScenarioSpec spec = *registered;
  spec.axes = {{"clusters", {AxisValue::of(1000)}}};
  apply_axis(spec, "clusters", 1000.0);

  spec.engine = sim::QueueBackend::kHeap;
  const RunResult heap = run_point(spec, /*seed=*/1);
  spec.engine = sim::QueueBackend::kLadder;
  const RunResult ladder = run_point(spec, /*seed=*/1);

  ASSERT_EQ(heap.metrics.size(), ladder.metrics.size());
  for (std::size_t i = 0; i < heap.metrics.size(); ++i) {
    EXPECT_EQ(heap.metrics[i].first, ladder.metrics[i].first);
    EXPECT_EQ(heap.metrics[i].second, ladder.metrics[i].second)
        << "metric '" << heap.metrics[i].first
        << "' differs between engines";
  }

  // Golden values recorded from the heap engine at this commit.
  EXPECT_EQ(heap.metric("events"), 7560896.0);
  EXPECT_EQ(heap.metric("messages"), 6239700.0);
  EXPECT_EQ(sig(heap.metric("max_local")), "0.100114488244");
  EXPECT_EQ(sig(heap.metric("max_global")), "0.137683505238");
}

// Cheap cross-engine sweep: every metric of a full registered grid must be
// bit-identical between backends (the table-level guarantee the CLI's
// --engine A/B flag relies on).
TEST(EngineTrace, E9OverheadScalingIdenticalAcrossEngines) {
  register_builtin_scenarios();
  const ScenarioSpec* registered =
      Registry::instance().find("e9_overhead_scaling");
  ASSERT_NE(registered, nullptr);

  ScenarioSpec spec = *registered;
  SweepRunner runner({1, false});
  spec.engine = sim::QueueBackend::kHeap;
  const SweepResult heap = runner.run(spec);
  spec.engine = sim::QueueBackend::kLadder;
  const SweepResult ladder = runner.run(spec);

  ASSERT_EQ(heap.rows.size(), ladder.rows.size());
  for (std::size_t r = 0; r < heap.rows.size(); ++r) {
    ASSERT_EQ(heap.rows[r].metrics.size(), ladder.rows[r].metrics.size());
    for (std::size_t m = 0; m < heap.rows[r].metrics.size(); ++m) {
      EXPECT_EQ(heap.rows[r].metrics[m].second,
                ladder.rows[r].metrics[m].second)
          << "row " << r << " metric '" << heap.rows[r].metrics[m].first
          << "' differs between engines";
    }
  }
}

}  // namespace
}  // namespace ftgcs::exp
