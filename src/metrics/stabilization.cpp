#include "metrics/stabilization.h"

#include "support/assert.h"

namespace ftgcs::metrics {

void StabilizationTracker::add(sim::Time at, double value) {
  FTGCS_EXPECTS(series_.empty() || at >= series_.back().first);
  series_.emplace_back(at, value);
}

std::optional<sim::Time> StabilizationTracker::stabilized_at() const {
  if (series_.empty()) return std::nullopt;
  // Walk backwards: find the suffix that is entirely within the band.
  std::optional<sim::Time> first_good;
  for (auto it = series_.rbegin(); it != series_.rend(); ++it) {
    if (it->second > threshold_) break;
    first_good = it->first;
  }
  return first_good;
}

std::optional<sim::Duration> StabilizationTracker::stabilization_delay(
    sim::Time t0) const {
  const auto at = stabilized_at();
  if (!at) return std::nullopt;
  return *at - t0;
}

}  // namespace ftgcs::metrics
