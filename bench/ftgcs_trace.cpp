// ftgcs_trace — inspect and compare binary event traces (.ftr files
// written via `ftgcs_bench --trace`).
//
//   ftgcs_trace dump <file> [--limit N]   print records as text
//   ftgcs_trace stats <file>              record/kind/size summary
//   ftgcs_trace diff <a> <b>              first divergent record, if any
//
// `diff` exits 0 when the traces are identical and 1 at the first
// divergence (payload mismatch, early end, or a decode error — a corrupted
// byte surfaces as divergence at the exact record it garbles, with its
// file offset). Exit 2 = usage / unreadable file.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/table.h"
#include "trace/diff.h"
#include "trace/format.h"
#include "trace/reader.h"

namespace {

using namespace ftgcs;

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: ftgcs_trace <dump <file> [--limit N] | stats <file> | "
               "diff <a> <b>>\n");
  std::exit(code);
}

const char* kind_name(std::uint8_t kind) {
  switch (kind) {
    case 0:
      return "cluster_pulse";
    case 1:
      return "max_level";
    case 2:
      return "share";
    case 3:
      return "propose";
    default:
      return "unknown";
  }
}

void print_record(const trace::Record& r) {
  std::printf("#%" PRIu64 " @%.17g %s %d -> %d", r.seq, r.at,
              kind_name(r.kind), r.sender, r.dest);
  if (trace::kind_has_level(r.kind)) std::printf(" level=%d", r.level);
  if (trace::kind_has_value(r.kind)) std::printf(" value=%.17g", r.value);
  std::printf("  [offset %" PRIu64 "]\n", r.offset);
}

int cmd_dump(const std::string& path, std::uint64_t limit) {
  trace::TraceReader reader(path);
  trace::Record record;
  std::uint64_t shown = 0;
  while (reader.next(record)) {
    if (shown++ < limit) print_record(record);
  }
  if (shown > limit) {
    std::printf("... %" PRIu64 " more records (raise --limit)\n",
                shown - limit);
  }
  std::printf("%" PRIu64 " records\n", reader.records_read());
  return 0;
}

int cmd_stats(const std::string& path) {
  trace::TraceReader reader(path);
  trace::Record record;
  std::uint64_t by_kind[5] = {0, 0, 0, 0, 0};
  std::uint64_t bytes_by_kind[5] = {0, 0, 0, 0, 0};
  double first_at = 0.0;
  double last_at = 0.0;
  bool any = false;
  // Per-record sizes come from offset deltas (records are variable-width:
  // the encoder delta-compresses seq/time), so each record's size is the
  // gap to the next record's start; the final record ends where the read
  // cursor rests (the end marker, attributed to no kind).
  int prev_kind = -1;
  std::uint64_t prev_offset = 0;
  while (reader.next(record)) {
    const int k = record.kind < 4 ? record.kind : 4;
    ++by_kind[k];
    if (prev_kind >= 0) bytes_by_kind[prev_kind] += record.offset - prev_offset;
    prev_kind = k;
    prev_offset = record.offset;
    if (!any) first_at = record.at;
    last_at = record.at;
    any = true;
  }
  if (prev_kind >= 0) bytes_by_kind[prev_kind] += reader.offset() - prev_offset;
  const std::uint64_t total = reader.records_read();
  // At a clean end the read cursor sits on the trailer: file size = +8.
  const std::uint64_t bytes = reader.offset() + 8;
  std::printf("%s: %" PRIu64 " records, %" PRIu64 " bytes", path.c_str(),
              total, bytes);
  if (total > 0) {
    std::printf(" (%.2f bytes/record)",
                static_cast<double>(bytes) / static_cast<double>(total));
  }
  std::printf("\n");
  if (any) std::printf("time span [%.6g, %.6g]\n", first_at, last_at);
  std::uint64_t payload_bytes = 0;
  for (const std::uint64_t b : bytes_by_kind) payload_bytes += b;
  metrics::Table table(
      {"kind", "records", "rec_share", "bytes", "byte_share", "b/rec"});
  for (int k = 0; k < 5; ++k) {
    if (by_kind[k] == 0) continue;
    table.add_row(
        {k < 4 ? kind_name(static_cast<std::uint8_t>(k)) : "unknown",
         metrics::Table::integer(static_cast<long long>(by_kind[k])),
         metrics::Table::num(total > 0 ? 100.0 *
                                             static_cast<double>(by_kind[k]) /
                                             static_cast<double>(total)
                                       : 0.0,
                             4),
         metrics::Table::integer(static_cast<long long>(bytes_by_kind[k])),
         metrics::Table::num(
             payload_bytes > 0
                 ? 100.0 * static_cast<double>(bytes_by_kind[k]) /
                       static_cast<double>(payload_bytes)
                 : 0.0,
             4),
         metrics::Table::num(
             by_kind[k] > 0 ? static_cast<double>(bytes_by_kind[k]) /
                                  static_cast<double>(by_kind[k])
                            : 0.0,
             4)});
  }
  if (table.rows() > 0) table.print(std::cout);
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const trace::TraceDiff diff = trace::diff_traces(path_a, path_b);
  if (diff.identical) {
    std::printf("identical: %" PRIu64 " records\n", diff.records_compared);
    return 0;
  }
  std::printf("divergence at record #%" PRIu64 " (%s)\n", diff.seq,
              diff.reason.c_str());
  std::printf("  a: offset %" PRIu64 "  %s\n", diff.offset_a,
              path_a.c_str());
  if (diff.has_record_a) {
    std::printf("     ");
    print_record(diff.record_a);
  }
  std::printf("  b: offset %" PRIu64 "  %s\n", diff.offset_b,
              path_b.c_str());
  if (diff.has_record_b) {
    std::printf("     ");
    print_record(diff.record_b);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "--help" || command == "-h" || command == "help") {
      usage(0);
    }
    if (command == "dump") {
      if (args.empty()) usage(2);
      std::uint64_t limit = 50;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--limit" && i + 1 < args.size()) {
          limit = std::stoull(args[++i]);
        } else {
          usage(2);
        }
      }
      return cmd_dump(args[0], limit);
    }
    if (command == "stats") {
      if (args.size() != 1) usage(2);
      return cmd_stats(args[0]);
    }
    if (command == "diff") {
      if (args.size() != 2) usage(2);
      return cmd_diff(args[0], args[1]);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ftgcs_trace: %s\n", error.what());
    return 2;
  }
  std::fprintf(stderr, "ftgcs_trace: unknown command '%s'\n",
               command.c_str());
  usage(2);
}
