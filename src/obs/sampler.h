// ProbeSampler: the deterministic sim-time metrics series.
//
// One sampler = one JSONL file. The constructor writes a header row
// (schema id + topology shape + the monitor's envelope bounds) and
// registers the fixed metric schema; every probe boundary then calls
// sample(), which refills the per-probe histograms with one O(V + E)
// sweep over the columnar snapshot, updates gauges/counters from the
// ground-truth skew sample and the invariant monitor, and appends one
// JSON row. Everything serialized here is a pure function of (scenario,
// seed, probe time) — NEVER of the queue backend or the shard count —
// so the file is bit-identical across `--engine {heap,ladder}` ×
// `--shards {1,2,4,8}`; backend-dependent diagnostics go to the
// PhaseProfiler sidecar instead.
//
// Determinism of the sweep itself: nodes and edges are visited in node-id
// order (each undirected edge once, from its lower endpoint), so the
// float accumulations and histogram fills see one canonical order no
// matter how the run was executed.
//
// Allocation contract: after prewarm() the sample() path allocates
// nothing — the row buffer and histogram storage are capacity-pinned and
// the stdio buffer was forced into existence by the header write
// (pinned by the ScopedAllocGuard test in tests/test_obs_metrics.cpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/node_table.h"
#include "exp/topology_graph.h"
#include "metrics/skew_tracker.h"
#include "obs/metrics.h"
#include "trace/monitor.h"

namespace ftgcs::obs {

/// Everything one probe feeds the sampler. `skews` and `columns` are
/// required; `monitor` is null when monitors are off (the margin and
/// violation fields are then not part of the schema); `m_lag` is only
/// read when the sampler was configured with measure_m_lag.
struct SampleContext {
  sim::Time at = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  const metrics::SkewSample* skews = nullptr;
  const core::SystemColumns* columns = nullptr;
  const trace::InvariantMonitor* monitor = nullptr;
  double m_lag = 0.0;
};

class ProbeSampler {
 public:
  struct Config {
    std::string path;
    /// Envelope bounds written into the header and (for each enabled
    /// family) tracked as a min-margin gauge. All zero = monitors off.
    trace::MonitorBounds bounds;
    bool monitors = false;
    bool measure_m_lag = false;
    /// Scale of the skew histograms (a time quantity derived from the
    /// run's params — e.g. the intra-cluster bound — so the bucket
    /// table is identical across backends). Must be > 0.
    double hist_scale = 1.0;
  };

  /// Builds the bucket table used by both skew histograms: linear
  /// resolution of scale/1000 up to scale/10, then ×1.25 geometric
  /// growth up to 64·scale.
  static LogLinearHistogram::Spec scaled_spec(double scale);

  /// Copies the resolved topology (same ownership rule as
  /// trace::InvariantMonitor: the sampler outlives resolution scratch).
  /// Opens `config.path` and writes the header row.
  ProbeSampler(Config config, exp::TopologyGraph graph);
  ~ProbeSampler();

  ProbeSampler(const ProbeSampler&) = delete;
  ProbeSampler& operator=(const ProbeSampler&) = delete;

  /// Capacity-pins the row buffer; call once before the probe loop to
  /// make the steady-state zero-allocation contract exact.
  void prewarm();

  /// One probe boundary: refill histograms, update the registry, append
  /// one JSONL row.
  void sample(const SampleContext& ctx);

  /// Flushes and closes the file (idempotent; also run by the dtor).
  void finish();

  std::uint64_t probes() const { return probes_; }
  std::uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }
  MetricsRegistry& registry() { return registry_; }

 private:
  void write_header(const Config& config);

  std::string path_;
  exp::TopologyGraph graph_;
  bool measure_m_lag_ = false;
  std::FILE* file_ = nullptr;
  MetricsRegistry registry_;
  std::string line_;  ///< reused row buffer (reserved in prewarm)
  std::uint64_t probes_ = 0;
  std::uint64_t bytes_ = 0;

  // Registered storage (owned by registry_; raw pointers are stable).
  Counter* events_ = nullptr;
  Counter* messages_ = nullptr;
  LogLinearHistogram* local_hist_ = nullptr;
  LogLinearHistogram* global_hist_ = nullptr;
  Gauge* cluster_local_ = nullptr;
  Gauge* cluster_global_ = nullptr;
  Gauge* intra_max_ = nullptr;
  Gauge* m_lag_ = nullptr;
  Counter* violations_ = nullptr;
  Gauge* margin_local_ = nullptr;
  Gauge* margin_global_ = nullptr;
  Gauge* margin_intra_ = nullptr;
  Gauge* margin_m_lag_ = nullptr;
};

}  // namespace ftgcs::obs
